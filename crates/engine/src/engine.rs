//! The long-lived session [`Engine`].

use crate::cache::AstCache;
use crate::deps::referenced_relations;
use crate::schedule::{components, run_level, run_tasks, topo_levels};
use crate::stats::{EngineStats, IngestAction, StmtId};
use lineagex_catalog::Catalog;
use lineagex_core::{
    assemble_nodes, cycle_stub, extract_entry, preprocess_statement, Diagnostic, DiagnosticCode,
    ExtractOptions, GraphIndex, GraphIndexCache, GraphSnapshot, ImpactReport, LineageError,
    LineageGraph, LineageResult, LineageView, Node, NodeKind, PreprocessedStatement, QueryEntry,
    QueryKind, QueryLineage, QuerySpec, SnapshotEntry, SourceColumn, TraceLog,
};
use lineagex_obs::{Counter, Gauge, Histogram};
use lineagex_sqlparse::ast::{SpannedStatement, Statement};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::Arc;

/// Engine-layer handles into the process-wide metrics registry. Created
/// at engine construction (so snapshots have a stable shape from the
/// first one) and shared by name across every engine in the process.
#[derive(Debug, Clone)]
struct EngineMetrics {
    /// [`Engine::ingest`] / [`Engine::ingest_parsed`] wall time, µs.
    ingest_us: Histogram,
    /// Non-empty [`Engine::refresh`] wall time, µs.
    refresh_us: Histogram,
    /// Wall time per topological level inside a refresh, µs.
    refresh_level_us: Histogram,
    /// [`Engine::publish`] wall time (refresh + index + snapshot), µs.
    publish_us: Histogram,
    /// Entries re-extracted per refresh (the closed dirty cone).
    dirty_cone_size: Histogram,
    /// Cumulative AST-cache hits across all engines.
    ast_cache_hits: Counter,
    /// Cumulative AST-cache misses across all engines.
    ast_cache_misses: Counter,
    /// Traversal-index cache invalidations (refreshes + retractions).
    index_invalidations: Counter,
    /// High-water mark of the published graph + index heap estimate.
    peak_graph_bytes: Gauge,
    /// Wall time of the most recent [`Engine::load_snapshot`], µs.
    snapshot_load_us: Gauge,
    /// The session's pinned SQL dialect, as its stable id
    /// ([`lineagex_sqlparse::DialectKind::id`]), set at construction.
    dialect: Gauge,
    /// Dialect constructs the parser recognised but preprocessing
    /// skipped ([`DiagnosticCode::DialectFallback`] receipts, e.g.
    /// `MERGE` bodies).
    dialect_fallbacks: Counter,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        let registry = lineagex_obs::registry();
        EngineMetrics {
            ingest_us: registry.histogram("engine.ingest_us"),
            refresh_us: registry.histogram("engine.refresh_us"),
            refresh_level_us: registry.histogram("engine.refresh_level_us"),
            publish_us: registry.histogram("engine.publish_us"),
            dirty_cone_size: registry.histogram("engine.dirty_cone_size"),
            ast_cache_hits: registry.counter("engine.ast_cache.hits"),
            ast_cache_misses: registry.counter("engine.ast_cache.misses"),
            index_invalidations: registry.counter("engine.index_invalidations"),
            peak_graph_bytes: registry.gauge("engine.peak_graph_bytes"),
            snapshot_load_us: registry.gauge("engine.snapshot_load_us"),
            dialect: registry.gauge("engine.dialect"),
            dialect_fallbacks: registry.counter("sqlparse.dialect_fallbacks"),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads for batch extraction. `0`/`1` extract on the calling
    /// thread; higher values parallelise each dependency level.
    pub jobs: usize,
    /// Per-query extraction options (ambiguity policy, tracing, ...).
    pub extract: ExtractOptions,
    /// Maximum scripts held by the AST cache (0 disables it).
    pub ast_cache_capacity: usize,
    /// Partition each refresh's dirty cone into connected components of
    /// the dependency DAG and extract unrelated components in parallel
    /// (the default). `false` keeps every component behind one global
    /// level barrier — the pre-sharding scheduler, retained for
    /// benchmarking and as an equivalence oracle. Both modes produce
    /// identical settled graphs for fully-defined logs; they can
    /// attribute usage-inferred external schemas to different inferring
    /// queries when disconnected components share an undefined relation.
    pub shard_components: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: 1,
            extract: ExtractOptions::default(),
            ast_cache_capacity: crate::cache::DEFAULT_CAPACITY,
            shard_components: true,
        }
    }
}

/// One live Query-Dictionary entry plus its statically-discovered
/// dependencies (the engine's edge set of the view dependency DAG).
#[derive(Debug, Clone)]
struct EntryState {
    slot: EntrySlot,
    /// Relations the defining query scans, as written (matches
    /// dictionary ids case-sensitively, like the extractor).
    deps: BTreeSet<String>,
    /// The same, normalised for invalidation matching against catalog
    /// relations (which are case-insensitive).
    deps_norm: BTreeSet<String>,
}

/// An entry's definition: parsed (live ingests) or cold SQL text
/// (snapshot-loaded). Cold entries carry everything scheduling needs —
/// the dependency sets live on [`EntryState`] — and are hydrated
/// (re-parsed and re-preprocessed) only when they actually become dirty,
/// so loading a 100k-view snapshot parses nothing. The parsed entry
/// stays boxed (as the preprocessor hands it over) so a cold dictionary
/// costs one `String` per entry, not a `QueryEntry`-sized slot.
#[derive(Debug, Clone)]
enum EntrySlot {
    Parsed(Box<QueryEntry>),
    Cold { sql: String },
}

impl EntryState {
    /// Whether this entry's definition is the same statement, without
    /// hydrating: cold entries compare the incoming statement's canonical
    /// rendering against the stored text (which is itself a rendering).
    fn same_statement(&self, statement: &Statement) -> bool {
        match &self.slot {
            EntrySlot::Parsed(entry) => entry.statement == *statement,
            EntrySlot::Cold { sql } => *sql == statement.to_string(),
        }
    }

    /// The parsed entry; panics if the entry is still cold. Every dirty
    /// entry is hydrated at the top of a refresh, so extraction-side
    /// callers can rely on this.
    fn parsed(&self) -> &QueryEntry {
        match &self.slot {
            EntrySlot::Parsed(entry) => entry,
            EntrySlot::Cold { .. } => unreachable!("dirty entries are hydrated before extraction"),
        }
    }

    /// The definition's SQL text, rendering when parsed.
    fn sql_text(&self) -> String {
        match &self.slot {
            EntrySlot::Parsed(entry) => entry.statement.to_string(),
            EntrySlot::Cold { sql } => sql.clone(),
        }
    }
}

/// An immutable, revision-stamped view of a settled engine, published by
/// [`Engine::publish`].
///
/// Everything is behind an `Arc`, so cloning a snapshot is O(1) and a
/// clone stays valid (and internally consistent — graph, index, and
/// diagnostics all describe the same `revision`) no matter what the
/// engine does afterwards. This is what a concurrent server hands to
/// reader threads.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The settled-graph revision this snapshot was published at.
    pub revision: u64,
    /// The settled lineage graph.
    pub graph: Arc<LineageGraph>,
    /// The interned traversal index over `graph`.
    pub index: Arc<GraphIndex>,
    /// Session-level diagnostics at publish time.
    pub diagnostics: Arc<Vec<Diagnostic>>,
    /// Session counters at publish time.
    pub stats: EngineStats,
    /// Live Query-Dictionary entries at publish time.
    pub entries: usize,
}

/// An incremental, parallel lineage engine for long-lived sessions.
///
/// Where [`lineagex_core::LineageX`] is batch-oriented — one call reads a
/// whole query log and extracts everything — an `Engine` accepts a
/// *stream* of statements over time and maintains the lineage graph
/// continuously:
///
/// * [`Engine::ingest`] parses (through a content-hash AST cache),
///   classifies, and registers statements, maintaining the catalog and a
///   view dependency DAG with dirty tracking: redefining or dropping one
///   view marks only its downstream cone for re-extraction;
/// * [`Engine::refresh`] settles the dirty set, topologically levelling
///   it and extracting independent views concurrently on up to
///   `jobs` scoped worker threads;
/// * [`Engine::graph`], [`Engine::lineage_of`], and [`Engine::impact_of`]
///   answer lineage questions between ingests (refreshing lazily).
///
/// For fully-defined logs (every scanned relation defined in-log or in
/// the provided catalog), the settled graph's nodes and per-query lineage
/// are identical to a one-shot [`lineagex_core::LineageX::run`] over the
/// same statements, and parallel extraction is byte-identical to
/// sequential — the workspace property tests assert both invariants. The
/// graph's `order` is a dependency-consistent processing order but not
/// necessarily the one-shot deferral order. Two deliberate semantic
/// differences from the one-shot pipeline: re-defining an existing view
/// *replaces* it (the batch dictionary rejects duplicate ids), and `DROP`
/// *retracts* (the batch pipeline records it as skipped).
///
/// ```
/// use lineagex_engine::Engine;
///
/// let mut engine = Engine::new();
/// engine.ingest("CREATE TABLE web (cid int, page text);").unwrap();
/// engine.ingest("CREATE VIEW v AS SELECT page FROM web WHERE cid > 0;").unwrap();
/// let graph = engine.graph().unwrap();
/// assert_eq!(graph.queries["v"].output_names(), vec!["page"]);
/// ```
#[derive(Debug, Default)]
pub struct Engine {
    options: EngineOptions,
    catalog: Catalog,
    entries: BTreeMap<String, EntryState>,
    /// Mirror of `entries`' key set, maintained on every insert/remove so
    /// a refresh doesn't re-collect 100k ids just to pass them to the
    /// extractor.
    qd_ids: BTreeSet<String>,
    /// Reverse dependency index: normalised relation name → ids of the
    /// entries scanning it. Turns dirty-cone closure into a worklist walk
    /// proportional to the cone, instead of a fixpoint over the whole
    /// entry table.
    rdeps: BTreeMap<String, BTreeSet<String>>,
    /// The settled graph, copy-on-write: [`Engine::publish`] and
    /// [`Engine::load_snapshot`] share this `Arc` with served snapshots
    /// for free, and the first mutation after a share pays one clone
    /// (`Arc::make_mut`) — exactly the clone `publish` used to pay every
    /// new revision, moved off the read/cold-start path.
    graph: Arc<LineageGraph>,
    /// Usage-inferred external schemas, attributed per inferring query so
    /// retraction can take them back out.
    inferred_by_query: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    traces: BTreeMap<String, TraceLog>,
    /// Entries awaiting (re-)extraction.
    dirty_entries: BTreeSet<String>,
    /// Relations (normalised) whose definition changed since the last
    /// refresh; their dependents get invalidated transitively.
    dirty_relations: BTreeSet<String>,
    /// Session-level diagnostics: skipped statements, noise, no-match
    /// drops, and (lenient) parse failures. Per-query extraction
    /// diagnostics live on the graph and are retracted with their query.
    session_diagnostics: Vec<Diagnostic>,
    /// Ids (re-)extracted or stubbed by the most recent refresh, in
    /// completion order — what a UI should report as fresh.
    last_refresh_ids: Vec<String>,
    cache: AstCache,
    /// Build-once cache for the interned traversal index over the
    /// settled graph, invalidated alongside the dirty-cone state: any
    /// refresh that extracts (or a `DROP` that retracts) drops it, so
    /// queries between ingests reuse one [`GraphIndex`] and pay the
    /// rebuild only after lineage actually changed.
    index_cache: GraphIndexCache,
    /// Monotonic settled-graph revision, bumped at every graph
    /// mutation; keys the index cache so a cache hit is one integer
    /// compare instead of a graph walk.
    graph_revision: u64,
    /// The most recently published graph snapshot, keyed by revision so
    /// repeat [`Engine::publish`] calls with no intervening mutation
    /// reuse one `Arc` instead of re-cloning the graph.
    published: Option<(u64, Arc<LineageGraph>)>,
    stats: EngineStats,
    /// Shared handles into the process-wide metrics registry; recording
    /// never touches engine state, so instrumentation is invisible to
    /// the incremental ≡ batch and `jobs`-independence invariants.
    metrics: EngineMetrics,
    /// Running total of per-query extraction diagnostics on the settled
    /// graph, maintained through [`Engine::merge_lineage`] /
    /// [`Engine::retract_lineage`] so diagnostic accounting never walks
    /// the whole query map.
    graph_diag_count: u64,
    /// Whether `graph.nodes` is up to date enough for *incremental*
    /// resettling. Starts `false` (the first refresh always assembles in
    /// full) and drops back to `false` on the rare mutations whose node
    /// fallout isn't cone-shaped: catalog changes, `DROP` retractions,
    /// and cycle stubs. Steady-state view churn keeps it `true`, so a
    /// refresh only touches nodes in the dirty cone.
    nodes_settled: bool,
    anon_counter: usize,
    seq: u64,
}

impl Engine {
    /// A fresh engine with default options and an empty catalog.
    pub fn new() -> Self {
        Engine::with_options(EngineOptions::default())
    }

    /// A fresh engine with the given options. The extraction options'
    /// [`DialectKind`](lineagex_sqlparse::DialectKind) is pinned here for
    /// the session's lifetime: the AST cache, the stats surface, and the
    /// `engine.dialect` gauge all reflect it from the first statement.
    pub fn with_options(options: EngineOptions) -> Self {
        let dialect = options.extract.dialect;
        let cache = AstCache::with_capacity_dialect(options.ast_cache_capacity, dialect);
        let mut engine = Engine { options, cache, ..Engine::default() };
        engine.stats.dialect = dialect.name().to_string();
        engine.metrics.dialect.set(dialect.id() as i64);
        engine
    }

    /// Provide base-table schemas up front.
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Merge base-table schemas into the live session catalog (the
    /// incoming definition wins on collision), dirtying dependents of
    /// every merged relation. This is how a snapshot-restored server
    /// applies a preload catalog *on top of* the snapshot's own catalog
    /// instead of clobbering it.
    pub fn merge_catalog(&mut self, catalog: Catalog) {
        for schema in catalog.relations() {
            self.dirty_relations.insert(normalize(&schema.name));
            self.catalog.add_or_replace(schema.clone());
            self.nodes_settled = false;
        }
    }

    /// Ingest a `;`-separated script: parse (served from the AST cache on
    /// re-ingest of identical text), classify each statement, update the
    /// catalog and dependency DAG, and mark whatever the statements
    /// invalidated as dirty. Extraction itself is deferred to the next
    /// [`Engine::refresh`] (or lineage query), so a burst of ingests pays
    /// for its re-extractions once.
    ///
    /// Returns one receipt per statement saying what the engine did.
    /// In lenient mode ([`ExtractOptions::lenient`]) unparsable regions
    /// of the script do not fail the call: each becomes a receipt with
    /// [`IngestAction::Failed`] carrying a span-tagged parse diagnostic,
    /// and every healthy statement is still ingested.
    pub fn ingest(&mut self, sql: &str) -> Result<Vec<StmtId>, LineageError> {
        let _timer = self.metrics.ingest_us.time();
        let (hits_before, misses_before) = (self.cache.hits, self.cache.misses);
        let script = self.cache.parse_recovering(sql);
        self.metrics.ast_cache_hits.add(self.cache.hits - hits_before);
        self.metrics.ast_cache_misses.add(self.cache.misses - misses_before);
        self.stats.parse_cache_hits = self.cache.hits;
        self.stats.parse_cache_misses = self.cache.misses;
        if !self.options.extract.lenient {
            if let Some(error) = script.errors.first() {
                return Err(LineageError::Parse(error.to_string()));
            }
        }
        Ok(self.apply_script(script, sql.trim()))
    }

    /// Ingest statements that were parsed elsewhere, skipping the
    /// engine's own parser and AST cache. `source` is the text the
    /// statements' spans index into, used to attach excerpts to
    /// diagnostics — so spans (and therefore receipts) stay relative to
    /// the caller's original script rather than to per-statement
    /// re-renders. This is how the CLI's `extract --jobs N` shim keeps
    /// file-accurate diagnostics while feeding a one-shot log through
    /// the session engine.
    pub fn ingest_parsed(
        &mut self,
        statements: Vec<SpannedStatement>,
        source: &str,
    ) -> Vec<StmtId> {
        let _timer = self.metrics.ingest_us.time();
        self.apply_script(
            lineagex_sqlparse::RecoveredScript { statements, errors: Vec::new() },
            source,
        )
    }

    /// Apply a recovered script: route statements through preprocessing
    /// and turn unparsable regions into [`IngestAction::Failed`]
    /// receipts, all interleaved back into source order so receipts read
    /// like the script.
    fn apply_script(
        &mut self,
        script: lineagex_sqlparse::RecoveredScript,
        source: &str,
    ) -> Vec<StmtId> {
        enum Item {
            Stmt(Box<SpannedStatement>),
            Failed(lineagex_sqlparse::ParseError),
        }
        let mut items: Vec<(usize, Item)> = script
            .statements
            .into_iter()
            .map(|s| (s.span.start, Item::Stmt(Box::new(s))))
            .chain(script.errors.into_iter().map(|e| (e.span.start, Item::Failed(e))))
            .collect();
        items.sort_by_key(|(start, _)| *start);
        let mut receipts = Vec::with_capacity(items.len());
        for (_, item) in items {
            self.seq += 1;
            self.stats.statements += 1;
            match item {
                Item::Stmt(stmt) => {
                    let (target, action, diagnostics) = self.apply_statement(*stmt, source);
                    receipts.push(StmtId { seq: self.seq, target, action, diagnostics });
                }
                Item::Failed(error) => {
                    self.stats.parse_failures += 1;
                    let diagnostic =
                        Diagnostic::new(DiagnosticCode::ParseError, error.message.clone())
                            .with_span(error.span)
                            .with_excerpt_from(source);
                    self.session_diagnostics.push(diagnostic.clone());
                    receipts.push(StmtId {
                        seq: self.seq,
                        target: "<unparsable>".into(),
                        action: IngestAction::Failed,
                        diagnostics: vec![diagnostic],
                    });
                }
            }
        }
        self.settle_diagnostic_count();
        receipts
    }

    /// Route one parsed statement through the shared preprocessing rules
    /// and apply its session effect. Returns the receipt's target, the
    /// action taken, and any diagnostics the statement produced.
    fn apply_statement(
        &mut self,
        stmt: SpannedStatement,
        source: &str,
    ) -> (String, IngestAction, Vec<Diagnostic>) {
        // Catalog effects first (plain DDL adds/replaces, DROP removes),
        // via the catalog's own incremental API; every reported change
        // seeds relation-level dirt.
        let catalog_changes = self.catalog.apply_statement(&stmt.statement);
        for change in &catalog_changes {
            self.dirty_relations.insert(normalize(change.relation()));
        }
        if !catalog_changes.is_empty() {
            // Catalog fallout isn't cone-shaped (a schema can shadow or
            // unshadow any node), so the next refresh assembles in full.
            self.nodes_settled = false;
        }
        let preprocessed = {
            let entries = &self.entries;
            preprocess_statement(stmt, None, &mut self.anon_counter, &mut |id| {
                entries.contains_key(id)
            })
        };
        match preprocessed {
            PreprocessedStatement::Entry(entry) => {
                let id = entry.id.clone();
                match self.entries.get(&id) {
                    Some(old) if old.same_statement(&entry.statement) => {
                        self.stats.unchanged += 1;
                        (id, IngestAction::Unchanged, Vec::new())
                    }
                    existing => {
                        let (action, diagnostics) = if existing.is_some() {
                            self.stats.redefinitions += 1;
                            // Redefinition is first-class in a session;
                            // the notice still surfaces so receipts match
                            // the batch pipeline's lenient diagnostics.
                            let diagnostic = Diagnostic::new(
                                DiagnosticCode::DuplicateQueryId,
                                format!(
                                    "duplicate query identifier \"{id}\": last definition wins"
                                ),
                            )
                            .for_statement(&id)
                            .with_span(entry.span)
                            .with_excerpt_from(source);
                            (IngestAction::Redefined, vec![diagnostic])
                        } else {
                            self.stats.defined += 1;
                            (IngestAction::Defined, Vec::new())
                        };
                        let mut deps = referenced_relations(entry.query());
                        if matches!(entry.kind, QueryKind::Insert | QueryKind::Update) {
                            // A write's output names come from the target
                            // table's catalog schema (`apply_output_names`),
                            // so the target is a real dependency: its
                            // redefinition must re-extract this entry.
                            deps.insert(id.split('#').next().unwrap_or(&id).to_string());
                        }
                        let deps_norm: BTreeSet<String> =
                            deps.iter().map(|d| normalize(d)).collect();
                        let state = EntryState { slot: EntrySlot::Parsed(entry), deps, deps_norm };
                        self.link_entry(id.clone(), state);
                        self.dirty_entries.insert(id.clone());
                        self.dirty_relations.insert(normalize(&id));
                        (id, action, diagnostics)
                    }
                }
            }
            // The catalog side already happened above; this arm only
            // acknowledges the statement.
            PreprocessedStatement::Schema(schema) => {
                (schema.name, IngestAction::Schema, Vec::new())
            }
            PreprocessedStatement::Drop(names, span) => {
                let mut touched = catalog_changes.len() as u64;
                for name in &names {
                    if let Some(old) = self.entries.remove(name) {
                        touched += 1;
                        self.unlink_entry(name, &old);
                        self.retract_lineage(name);
                        // The retraction mutated the settled graph
                        // directly (no refresh will run unless something
                        // is dirty), so the traversal index is stale now.
                        self.graph_revision += 1;
                        self.index_cache.invalidate();
                        self.metrics.index_invalidations.inc();
                        self.nodes_settled = false;
                        self.traces.remove(name);
                        self.inferred_by_query.remove(name);
                        self.dirty_entries.remove(name);
                        self.dirty_relations.insert(normalize(name));
                    }
                }
                self.stats.drops += touched;
                let target = names.join(", ");
                if touched == 0 {
                    let diagnostic = Diagnostic::new(
                        DiagnosticCode::SkippedStatement,
                        format!("DROP {target} matched nothing"),
                    )
                    .with_span(span)
                    .with_excerpt_from(source);
                    self.session_diagnostics.push(diagnostic.clone());
                    (target, IngestAction::Skipped, vec![diagnostic])
                } else {
                    (target, IngestAction::Dropped, Vec::new())
                }
            }
            PreprocessedStatement::Skipped(diagnostic) => {
                if diagnostic.code == DiagnosticCode::DialectFallback {
                    self.metrics.dialect_fallbacks.inc();
                }
                let diagnostic = diagnostic.with_excerpt_from(source);
                let target = diagnostic.message.clone();
                self.session_diagnostics.push(diagnostic.clone());
                (target, IngestAction::Skipped, vec![diagnostic])
            }
        }
    }

    /// Settle all pending invalidations: close the dirty set over the
    /// reverse-dependency index (downstream cones of every changed
    /// relation), partition it into connected components of the
    /// dependency DAG, and (re-)extract — unrelated components in
    /// parallel when `jobs > 1`. Returns the number of extractions
    /// performed.
    ///
    /// Every step is proportional to the touched cone, never the whole
    /// catalog: closure walks the reverse-dependency index, scheduling
    /// levels only the cone, and node settling re-derives only nodes the
    /// cone (or its inferred-schema fallout) could have changed.
    ///
    /// On error, successfully extracted entries are kept and the failing
    /// ones (plus anything scheduled behind them) stay dirty, so a
    /// correcting ingest can retry.
    pub fn refresh(&mut self) -> Result<usize, LineageError> {
        if self.dirty_entries.is_empty() && self.dirty_relations.is_empty() {
            return Ok(0);
        }
        let _timer = self.metrics.refresh_us.time();
        self.last_refresh_ids.clear();
        // Everything below mutates the settled graph (retractions, cycle
        // stubs, merges, node assembly): the traversal index dies with
        // the old revision and is rebuilt lazily by the next query.
        self.graph_revision += 1;
        self.index_cache.invalidate();
        self.metrics.index_invalidations.inc();

        // 1. Close the dirty set: an entry is dirty when marked directly
        //    or when any (transitive) upstream relation changed.
        let mut dirty = self.close_over_dependents(self.dirty_entries.clone(), {
            let mut changed = self.dirty_relations.clone();
            changed.extend(self.dirty_entries.iter().map(|id| normalize(id)));
            changed
        });

        // 2. Hydrate snapshot-loaded entries on first dirt: cold slots
        //    re-parse their stored definition here, and only here, so a
        //    loaded session pays parsing per touched entry, not per
        //    catalog entry.
        let cold: Vec<String> = dirty
            .iter()
            .filter(|id| matches!(self.entries[id.as_str()].slot, EntrySlot::Cold { .. }))
            .cloned()
            .collect();
        for id in &cold {
            self.hydrate(id)?;
        }

        // 3. Partition the cone into connected components (or keep one
        //    global component in the legacy scheduler) and level each
        //    one topologically; clean upstreams are already settled in
        //    the graph and don't constrain the schedule. In lenient mode
        //    a dependency cycle is broken like the batch deferral stack
        //    breaks it: the member that closes the cycle (the
        //    second-to-last element of the `[a, .., x, a]` path) gets an
        //    empty partial stub carrying the cycle path, and the rest of
        //    the cone extracts against the stub.
        let comps = if self.options.shard_components {
            components(&dirty, |id| self.entries[id].deps.clone())
        } else {
            vec![dirty.clone()]
        };
        let mut plans: Vec<ComponentPlan> = Vec::with_capacity(comps.len());
        for mut members in comps {
            let levels = loop {
                match topo_levels(&members, |id| self.entries[id].deps.clone()) {
                    Ok(levels) => break levels,
                    Err(cycle) => {
                        if !self.options.extract.lenient {
                            return Err(LineageError::DependencyCycle(cycle));
                        }
                        let id = cycle[cycle.len() - 2].clone();
                        self.retract_lineage(&id);
                        self.traces.remove(&id);
                        self.inferred_by_query.remove(&id);
                        let stub = cycle_stub(self.entries[&id].parsed(), &cycle);
                        self.merge_lineage(stub);
                        self.nodes_settled = false;
                        self.stats.extractions += 1;
                        self.last_refresh_ids.push(id.clone());
                        members.remove(&id);
                        dirty.remove(&id);
                        self.dirty_entries.remove(&id);
                    }
                }
            };
            if !members.is_empty() {
                plans.push(ComponentPlan { members, levels });
            }
        }
        self.metrics.dirty_cone_size.record(dirty.len() as u64);

        // 4. Retract everything about to be re-extracted so stale lineage
        //    can never leak into a dependent's extraction. Inferred-schema
        //    keys the retractions touched feed the node resettle below.
        let mut inferred_touched: BTreeSet<String> = BTreeSet::new();
        for id in &dirty {
            self.retract_lineage(id);
            self.traces.remove(id);
            if let Some(delta) = self.inferred_by_query.remove(id) {
                inferred_touched.extend(delta.into_keys());
            }
        }

        // 5. Extract component by component. A single component keeps the
        //    pre-sharding behaviour — `jobs` workers inside each level —
        //    while multiple components put the workers *across*
        //    components (one thread per component), which avoids the
        //    global level barrier entirely. The mode depends only on the
        //    component count, never on `jobs`, so results stay
        //    `jobs`-independent.
        let base_inferred = self.merged_inferred();
        let jobs = self.options.jobs.max(1);
        let outer_jobs = jobs.min(plans.len().max(1));
        let inner_jobs = if plans.len() <= 1 { jobs } else { 1 };
        let outcomes = {
            let plans = &plans;
            let entries = &self.entries;
            let settled = &self.graph.queries;
            let qd_ids = &self.qd_ids;
            let catalog = &self.catalog;
            let options = &self.options.extract;
            let base_inferred = &base_inferred;
            let level_us = &self.metrics.refresh_level_us;
            run_tasks(plans.len(), outer_jobs, move |ci| {
                extract_component(
                    &plans[ci],
                    entries,
                    settled,
                    qd_ids,
                    catalog,
                    options,
                    base_inferred,
                    inner_jobs,
                    level_us,
                )
            })
        };
        let mut extracted = 0u64;
        let mut failure: Option<LineageError> = None;
        for (id, result) in outcomes.into_iter().flatten() {
            match result {
                Ok((lineage, trace, delta)) => {
                    extracted += 1;
                    self.dirty_entries.remove(&id);
                    self.last_refresh_ids.push(id.clone());
                    self.merge_lineage(lineage);
                    if let Some(trace) = trace {
                        self.traces.insert(id.clone(), trace);
                    }
                    if !delta.is_empty() {
                        inferred_touched.extend(delta.keys().cloned());
                        self.inferred_by_query.insert(id, delta);
                    }
                }
                Err(error) => {
                    failure.get_or_insert(error);
                }
            }
        }

        // 6. Settle the node map (catalog / query / external shadowing).
        //    Steady-state view churn resettles only the touched keys;
        //    catalog changes, drops, and cycle stubs fall back to one
        //    full assembly (and re-arm the incremental path).
        if self.nodes_settled {
            self.resettle_nodes(&dirty, inferred_touched);
        } else {
            let nodes = assemble_nodes(&self.catalog, &self.graph.queries, &self.merged_inferred());
            Arc::make_mut(&mut self.graph).nodes = nodes;
            self.nodes_settled = true;
        }
        debug_assert_eq!(
            self.graph.nodes,
            assemble_nodes(&self.catalog, &self.graph.queries, &self.merged_inferred()),
            "incremental node settle must match full assembly"
        );
        debug_assert_eq!(
            self.graph_diag_count,
            self.graph.queries.values().map(|q| q.diagnostics.len() as u64).sum::<u64>(),
            "running diagnostic count must match a recount"
        );
        self.stats.extractions += extracted;
        self.stats.last_refresh_extractions = extracted;
        self.stats.refreshes += 1;
        self.settle_diagnostic_count();

        match failure {
            None => {
                self.dirty_entries.clear();
                self.dirty_relations.clear();
                Ok(extracted as usize)
            }
            Some(error) => {
                self.dirty_entries =
                    dirty.into_iter().filter(|id| !self.graph.queries.contains_key(id)).collect();
                self.dirty_relations.clear();
                Err(error)
            }
        }
    }

    /// Re-parse a snapshot-loaded (cold) entry's stored definition into a
    /// live [`QueryEntry`]. No-op for already-parsed entries.
    fn hydrate(&mut self, id: &str) -> Result<(), LineageError> {
        let sql = match &self.entries[id].slot {
            EntrySlot::Parsed(_) => return Ok(()),
            EntrySlot::Cold { sql } => sql.clone(),
        };
        let statements =
            lineagex_sqlparse::parse_sql_spanned_with(&sql, self.options.extract.dialect).map_err(
                |e| {
                    LineageError::Snapshot(format!("snapshot entry \"{id}\" no longer parses: {e}"))
                },
            )?;
        let stmt = statements
            .into_iter()
            .next()
            .ok_or_else(|| LineageError::Snapshot(format!("snapshot entry \"{id}\" is empty")))?;
        // The stored text is one statement rendered from one entry, so
        // preprocessing is deterministic; the anonymous counter and the
        // duplicate-id probe are irrelevant here because the id is
        // pinned to the dictionary key afterwards.
        let mut counter = 0usize;
        match preprocess_statement(stmt, None, &mut counter, &mut |_| false) {
            PreprocessedStatement::Entry(mut entry) => {
                entry.id = id.to_string();
                self.entries.get_mut(id).expect("hydrating a live entry").slot =
                    EntrySlot::Parsed(entry);
                Ok(())
            }
            _ => Err(LineageError::Snapshot(format!(
                "snapshot entry \"{id}\" is not a lineage query"
            ))),
        }
    }

    /// Re-derive the node-map keys this refresh could have changed: the
    /// dirty ids themselves, their `table#N` write clusters (a write's
    /// node merges the base node's columns), and every relation whose
    /// usage-inferred schema was touched. Mirrors [`assemble_nodes`]'s
    /// shadowing rules key by key; the refresh `debug_assert` checks the
    /// mirror against a full assembly.
    fn resettle_nodes(&mut self, dirty: &BTreeSet<String>, inferred_touched: BTreeSet<String>) {
        let mut touched = inferred_touched;
        for id in dirty {
            touched.insert(id.clone());
            let base = id.split('#').next().unwrap_or(id).to_string();
            let prefix = format!("{base}#");
            for key in self
                .graph
                .queries
                .range(base.clone()..)
                .map(|(key, _)| key)
                .take_while(|key| **key == base || key.starts_with(&prefix))
            {
                touched.insert(key.clone());
            }
            touched.insert(base);
        }
        let merged = self.merged_inferred();
        let catalog = &self.catalog;
        let graph = Arc::make_mut(&mut self.graph);
        for key in &touched {
            let node = if let Some(lineage) = graph.queries.get(key) {
                let mut columns: Vec<String> =
                    lineage.outputs.iter().map(|o| o.name.clone()).collect();
                if matches!(lineage.kind, QueryKind::Insert | QueryKind::Update) {
                    // Mirror full assembly's insertion order: when the
                    // write's base is itself a settled query it was
                    // (re)derived before this `base#N` key (`base` sorts
                    // first and `touched` is iterated in order);
                    // otherwise the node the full pass consulted at that
                    // point is the catalog's.
                    let base = key.split('#').next().unwrap_or(key);
                    let existing = if base != key && graph.queries.contains_key(base) {
                        graph.nodes.get(base).cloned()
                    } else {
                        catalog_node(catalog, base)
                    };
                    if let Some(existing) = existing {
                        let mut merged_columns = existing.columns;
                        for column in columns {
                            if !merged_columns.contains(&column) {
                                merged_columns.push(column);
                            }
                        }
                        columns = merged_columns;
                    }
                }
                Some(Node { name: key.clone(), kind: NodeKind::for_query(&lineage.kind), columns })
            } else if let Some(node) = catalog_node(catalog, key) {
                Some(node)
            } else {
                merged.get(key).map(|columns| Node {
                    name: key.clone(),
                    kind: NodeKind::External,
                    columns: columns.iter().cloned().collect(),
                })
            };
            match node {
                Some(node) => {
                    graph.nodes.insert(key.clone(), node);
                }
                None => {
                    graph.nodes.remove(key);
                }
            }
        }
    }

    /// The settled lineage graph (refreshing first if needed).
    pub fn graph(&mut self) -> Result<&LineageGraph, LineageError> {
        self.refresh()?;
        Ok(&self.graph)
    }

    /// The interned traversal index ([`GraphIndex`]) over the settled
    /// graph, refreshing first if needed. Cached per settled revision:
    /// repeated queries between ingests share one index (a hit costs
    /// one integer compare, no graph walk), and any refresh or
    /// retraction that changes the graph bumps the revision.
    pub fn graph_index(&mut self) -> Result<Arc<GraphIndex>, LineageError> {
        self.refresh()?;
        Ok(self.index_cache.get_or_build_at(self.graph_revision, &self.graph))
    }

    /// A point-in-time clone of the settled graph that survives further
    /// ingests.
    pub fn snapshot(&mut self) -> Result<LineageGraph, LineageError> {
        self.refresh()?;
        Ok((*self.graph).clone())
    }

    /// The current settled-graph revision. Monotonic: every graph
    /// mutation (refresh extraction, `DROP` retraction) bumps it, so two
    /// equal revisions always denote the identical settled graph.
    pub fn revision(&self) -> u64 {
        self.graph_revision
    }

    /// Settle pending work and publish an immutable, shareable
    /// [`EngineSnapshot`]: the revision-stamped graph, its interned
    /// traversal index, and the session diagnostics, all behind `Arc`s.
    ///
    /// This is the engine half of the serving layer's swap-on-refresh
    /// protocol: a server thread calls `publish` after each settled
    /// write and swaps the snapshot into a shared slot; readers clone
    /// the `Arc`s and answer lock-free while the engine keeps mutating.
    /// Publishing twice without an intervening mutation reuses the same
    /// graph and index `Arc`s (one integer compare, no clone). On error
    /// the previous snapshot stays valid — nothing is published for a
    /// refresh that failed to settle.
    pub fn publish(&mut self) -> Result<EngineSnapshot, LineageError> {
        let _timer = self.metrics.publish_us.time();
        self.refresh()?;
        let index = self.index_cache.get_or_build_at(self.graph_revision, &self.graph);
        let graph = match &self.published {
            Some((revision, graph)) if *revision == self.graph_revision => Arc::clone(graph),
            _ => {
                // Copy-on-write: the engine's next graph mutation pays
                // the clone (`Arc::make_mut`), not this publish.
                let graph = Arc::clone(&self.graph);
                self.published = Some((self.graph_revision, Arc::clone(&graph)));
                // A fresh revision is the natural high-water-mark probe:
                // the estimate covers exactly what a server now retains
                // (settled graph + interned index).
                let bytes = (graph.approx_bytes() + index.approx_bytes()) as i64;
                if bytes > self.metrics.peak_graph_bytes.get() {
                    self.metrics.peak_graph_bytes.set(bytes);
                }
                graph
            }
        };
        Ok(EngineSnapshot {
            revision: self.graph_revision,
            graph,
            index,
            diagnostics: Arc::new(self.session_diagnostics.clone()),
            stats: self.stats.clone(),
            entries: self.entries.len(),
        })
    }

    /// Settle pending work and persist the whole session — catalog,
    /// settled graph, interned traversal index, session diagnostics,
    /// inferred schemas, dictionary entries, revision, and counters — to
    /// `path` in the versioned binary snapshot format
    /// ([`lineagex_core::snapshot`]).
    ///
    /// A session restored with [`Engine::load_snapshot`] answers every
    /// query identically to this one without re-parsing or re-extracting
    /// anything: entry definitions are stored as SQL text and re-parsed
    /// lazily, only if a later ingest actually dirties them. Traversal
    /// traces are the one thing deliberately not persisted (they are a
    /// debugging aid, unbounded, and reproducible by re-extracting).
    pub fn save_snapshot(&mut self, path: &Path) -> Result<(), LineageError> {
        self.refresh()?;
        let index = self.index_cache.get_or_build_at(self.graph_revision, &self.graph);
        let entries = self
            .entries
            .iter()
            .map(|(id, state)| SnapshotEntry {
                id: id.clone(),
                sql: state.sql_text(),
                deps: state.deps.iter().cloned().collect(),
                deps_norm: state.deps_norm.iter().cloned().collect(),
            })
            .collect();
        let snapshot = GraphSnapshot {
            catalog: self.catalog.clone(),
            graph: (*self.graph).clone(),
            index: (*index).clone(),
            diagnostics: self.session_diagnostics.clone(),
            inferred: self.inferred_by_query.clone(),
            entries,
            revision: self.graph_revision,
            counters: self.counters_out(),
            dialect: self.options.extract.dialect.name().to_string(),
        };
        lineagex_core::write_snapshot_file(path, &snapshot)?;
        Ok(())
    }

    /// Restore a session persisted by [`Engine::save_snapshot`]: decode,
    /// rebuild the in-memory indexes (reverse dependencies, id mirror),
    /// and prime the traversal-index cache at the stored revision — no
    /// SQL is parsed and nothing is extracted, so cold-start cost is
    /// decode-bound. Corrupted, truncated, or version-mismatched files
    /// fail with a typed [`LineageError::Snapshot`], never a panic.
    ///
    /// The snapshot records the SQL dialect its session parsed under;
    /// this strict loader refuses to restore it when `options` request a
    /// *different* dialect — entry definitions would re-hydrate under
    /// grammar rules that never produced them. Callers with no explicit
    /// dialect preference should use [`Engine::load_snapshot_adopting`].
    pub fn load_snapshot(path: &Path, options: EngineOptions) -> Result<Engine, LineageError> {
        Engine::load_snapshot_inner(path, options, false)
    }

    /// Like [`Engine::load_snapshot`], but adopt the snapshot's recorded
    /// dialect instead of requiring `options` to match it. This is the
    /// right loader when the caller did not pin a dialect explicitly
    /// (e.g. a server restart without `--dialect`).
    pub fn load_snapshot_adopting(
        path: &Path,
        options: EngineOptions,
    ) -> Result<Engine, LineageError> {
        Engine::load_snapshot_inner(path, options, true)
    }

    fn load_snapshot_inner(
        path: &Path,
        mut options: EngineOptions,
        adopt_dialect: bool,
    ) -> Result<Engine, LineageError> {
        let start = std::time::Instant::now();
        let snapshot = lineagex_core::read_snapshot_file(path)?;
        let Some(snapshot_dialect) = lineagex_sqlparse::DialectKind::parse(&snapshot.dialect)
        else {
            return Err(LineageError::Snapshot(format!(
                "snapshot records dialect {:?}, which this build does not know",
                snapshot.dialect
            )));
        };
        if adopt_dialect {
            options.extract.dialect = snapshot_dialect;
        } else if options.extract.dialect != snapshot_dialect {
            return Err(LineageError::Snapshot(format!(
                "snapshot was built under dialect \"{snapshot_dialect}\" but \"{}\" was \
                 requested; drop the explicit dialect to adopt the snapshot's, or re-extract \
                 the log under the new dialect",
                options.extract.dialect
            )));
        }
        let mut engine = Engine::with_options(options);
        engine.catalog = snapshot.catalog;
        engine.graph = Arc::new(snapshot.graph);
        // Prime the publish slot: a server's first publish after loading
        // is then an `Arc` bump, not a 10k-query graph clone.
        engine.published = Some((snapshot.revision, Arc::clone(&engine.graph)));
        engine.session_diagnostics = snapshot.diagnostics;
        engine.inferred_by_query = snapshot.inferred;
        // Bulk-build the dictionary and its reverse-dependency index:
        // snapshot entries arrive sorted by id, so collecting pairs and
        // building each tree once beats 10k+ `link_entry` rebalances.
        let mut rdep_pairs: Vec<(String, String)> = Vec::new();
        let mut states: Vec<(String, EntryState)> = Vec::with_capacity(snapshot.entries.len());
        for entry in snapshot.entries {
            let SnapshotEntry { id, sql, deps, deps_norm } = entry;
            let state = EntryState {
                slot: EntrySlot::Cold { sql },
                deps: deps.into_iter().collect(),
                deps_norm: deps_norm.into_iter().collect(),
            };
            for dep in &state.deps_norm {
                rdep_pairs.push((dep.clone(), id.clone()));
            }
            states.push((id, state));
        }
        engine.qd_ids = states.iter().map(|(id, _)| id.clone()).collect();
        engine.entries = states.into_iter().collect();
        rdep_pairs.sort();
        let mut rdeps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (dep, id) in rdep_pairs {
            rdeps.entry(dep).or_default().insert(id);
        }
        engine.rdeps = rdeps;
        engine.graph_revision = snapshot.revision;
        let index = Arc::new(snapshot.index);
        let bytes = (engine.graph.approx_bytes() + index.approx_bytes()) as i64;
        if bytes > engine.metrics.peak_graph_bytes.get() {
            engine.metrics.peak_graph_bytes.set(bytes);
        }
        engine.index_cache.prime_at(snapshot.revision, index);
        for (name, value) in snapshot.counters {
            engine.restore_counter(&name, value);
        }
        engine.graph_diag_count =
            engine.graph.queries.values().map(|q| q.diagnostics.len() as u64).sum();
        engine.settle_diagnostic_count();
        engine.metrics.snapshot_load_us.set(start.elapsed().as_micros() as i64);
        Ok(engine)
    }

    /// The session counters as stable-named pairs for the snapshot codec.
    fn counters_out(&self) -> Vec<(String, u64)> {
        vec![
            ("stats.statements".into(), self.stats.statements),
            ("stats.defined".into(), self.stats.defined),
            ("stats.redefinitions".into(), self.stats.redefinitions),
            ("stats.unchanged".into(), self.stats.unchanged),
            ("stats.drops".into(), self.stats.drops),
            ("stats.parse_failures".into(), self.stats.parse_failures),
            ("stats.diagnostics".into(), self.stats.diagnostics),
            ("stats.extractions".into(), self.stats.extractions),
            ("stats.last_refresh_extractions".into(), self.stats.last_refresh_extractions),
            ("stats.refreshes".into(), self.stats.refreshes),
            ("stats.parse_cache_hits".into(), self.stats.parse_cache_hits),
            ("stats.parse_cache_misses".into(), self.stats.parse_cache_misses),
            ("engine.anon_counter".into(), self.anon_counter as u64),
            ("engine.seq".into(), self.seq),
        ]
    }

    /// Restore one snapshot counter by name; unknown names are ignored so
    /// old engines load snapshots from newer writers of the same format
    /// version.
    fn restore_counter(&mut self, name: &str, value: u64) {
        match name {
            "stats.statements" => self.stats.statements = value,
            "stats.defined" => self.stats.defined = value,
            "stats.redefinitions" => self.stats.redefinitions = value,
            "stats.unchanged" => self.stats.unchanged = value,
            "stats.drops" => self.stats.drops = value,
            "stats.parse_failures" => self.stats.parse_failures = value,
            "stats.diagnostics" => self.stats.diagnostics = value,
            "stats.extractions" => self.stats.extractions = value,
            "stats.last_refresh_extractions" => self.stats.last_refresh_extractions = value,
            "stats.refreshes" => self.stats.refreshes = value,
            "stats.parse_cache_hits" => self.stats.parse_cache_hits = value,
            "stats.parse_cache_misses" => self.stats.parse_cache_misses = value,
            "engine.anon_counter" => self.anon_counter = value as usize,
            "engine.seq" => self.seq = value,
            _ => {}
        }
    }

    /// Full lineage of one output column, `C_con(c) ∪ C_ref(Q)`.
    pub fn lineage_of(
        &mut self,
        table: &str,
        column: &str,
    ) -> Result<Option<BTreeSet<SourceColumn>>, LineageError> {
        self.refresh()?;
        Ok(self.graph.queries.get(table).and_then(|q| q.lineage_of(column)))
    }

    /// Transitive impact analysis from one column (the paper's §IV demo
    /// question), over the settled graph's cached traversal index.
    pub fn impact_of(&mut self, table: &str, column: &str) -> Result<ImpactReport, LineageError> {
        let index = self.graph_index()?;
        let answer = QuerySpec::new().from_column(table, column).downstream().run_with(&index);
        Ok(ImpactReport::from_answer(SourceColumn::new(table, column), answer))
    }

    /// Package the session state as a one-shot-style [`LineageResult`]
    /// (empty deferral log: the scheduler replaces the deferral stack).
    pub fn result(&mut self) -> Result<LineageResult, LineageError> {
        self.refresh()?;
        Ok(LineageResult {
            graph: (*self.graph).clone(),
            traces: self.traces.clone(),
            deferrals: Vec::new(),
            inferred: self.merged_inferred(),
            diagnostics: self.session_diagnostics.clone(),
            index: self.index_cache.clone(),
        })
    }

    /// Mark every entry dirty, forcing the next refresh to re-extract the
    /// whole dictionary (benchmarking aid, and escape hatch after
    /// out-of-band catalog edits).
    pub fn invalidate_all(&mut self) {
        self.dirty_entries.extend(self.entries.keys().cloned());
    }

    /// Entries directly scanning `relation` (one dirty-propagation hop).
    pub fn dependents_of(&self, relation: &str) -> BTreeSet<String> {
        self.rdeps.get(&normalize(relation)).cloned().unwrap_or_default()
    }

    /// `relation` plus everything transitively downstream of it — the set
    /// a redefinition of `relation` re-extracts.
    pub fn downstream_cone(&self, relation: &str) -> BTreeSet<String> {
        let mut seed = BTreeSet::new();
        if self.entries.contains_key(relation) {
            seed.insert(relation.to_string());
        }
        self.close_over_dependents(seed, BTreeSet::from([normalize(relation)]))
    }

    /// Closure over the dependency DAG: grow `entries` with every entry
    /// depending (transitively) on a relation in `changed`, treating each
    /// newly-added entry's own relation as changed too. A worklist walk
    /// over the reverse-dependency index, so cost is proportional to the
    /// resulting cone — not to the size of the dictionary.
    fn close_over_dependents(
        &self,
        mut entries: BTreeSet<String>,
        changed: BTreeSet<String>,
    ) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = changed;
        let mut queue: Vec<String> = seen.iter().cloned().collect();
        while let Some(relation) = queue.pop() {
            if let Some(dependents) = self.rdeps.get(&relation) {
                for id in dependents {
                    if entries.insert(id.clone()) {
                        let norm = normalize(id);
                        if seen.insert(norm.clone()) {
                            queue.push(norm);
                        }
                    }
                }
            }
        }
        entries
    }

    /// Register (or re-register) a dictionary entry, keeping the id
    /// mirror and the reverse-dependency index in sync.
    fn link_entry(&mut self, id: String, state: EntryState) {
        if let Some(old) = self.entries.remove(&id) {
            self.unlink_entry(&id, &old);
        }
        for dep in &state.deps_norm {
            self.rdeps.entry(dep.clone()).or_default().insert(id.clone());
        }
        self.qd_ids.insert(id.clone());
        self.entries.insert(id, state);
    }

    /// Drop a (already removed) entry's edges from the id mirror and the
    /// reverse-dependency index.
    fn unlink_entry(&mut self, id: &str, old: &EntryState) {
        for dep in &old.deps_norm {
            if let Some(dependents) = self.rdeps.get_mut(dep) {
                dependents.remove(id);
                if dependents.is_empty() {
                    self.rdeps.remove(dep);
                }
            }
        }
        self.qd_ids.remove(id);
    }

    /// Merge per-query lineage into the settled graph, keeping the
    /// running diagnostic total current.
    fn merge_lineage(&mut self, lineage: QueryLineage) {
        self.graph_diag_count += lineage.diagnostics.len() as u64;
        Arc::make_mut(&mut self.graph).merge_query(lineage);
    }

    /// Retract per-query lineage from the settled graph, keeping the
    /// running diagnostic total current.
    fn retract_lineage(&mut self, id: &str) {
        if let Some(old) = Arc::make_mut(&mut self.graph).retract_query(id) {
            self.graph_diag_count -= old.diagnostics.len() as u64;
        }
    }

    /// Session counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Session-level diagnostics (skipped statements, noise, no-match
    /// drops, lenient parse failures). Per-query extraction diagnostics
    /// live on [`LineageGraph::queries`] and are retracted with their
    /// query on redefinition or `DROP`.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.session_diagnostics
    }

    /// The query ids the most recent refresh (re-)extracted or stubbed,
    /// in completion order. Lets a caller surface only the *fresh*
    /// extraction diagnostics after a refresh instead of re-reporting
    /// the whole session's history.
    pub fn last_refresh_ids(&self) -> &[String] {
        &self.last_refresh_ids
    }

    /// Settle the live diagnostic total (session-level plus per-query)
    /// into [`EngineStats::diagnostics`]. O(1): the per-query half is a
    /// running count maintained by [`Engine::merge_lineage`] /
    /// [`Engine::retract_lineage`].
    fn settle_diagnostic_count(&mut self) {
        self.stats.diagnostics = self.session_diagnostics.len() as u64 + self.graph_diag_count;
    }

    /// Traversal traces, when tracing is enabled in the options.
    pub fn traces(&self) -> &BTreeMap<String, TraceLog> {
        &self.traces
    }

    /// The current catalog (user schemas plus ingested DDL).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of live dictionary entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the next refresh has work to do.
    pub fn has_pending_work(&self) -> bool {
        !self.dirty_entries.is_empty() || !self.dirty_relations.is_empty()
    }

    /// Merge the per-query inferred-schema deltas into one map.
    fn merged_inferred(&self) -> BTreeMap<String, BTreeSet<String>> {
        let mut merged: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for delta in self.inferred_by_query.values() {
            for (table, columns) in delta {
                merged.entry(table.clone()).or_default().extend(columns.iter().cloned());
            }
        }
        merged
    }
}

/// The engine is the *session* backend of the unified query surface:
/// everything written against [`LineageView`] — the [`GraphQuery`]
/// builder, [`ReportV2`] serialisation, stats — runs unchanged over a
/// live session, settling pending work first.
///
/// [`GraphQuery`]: lineagex_core::GraphQuery
/// [`ReportV2`]: lineagex_core::ReportV2
///
/// ```
/// use lineagex_engine::Engine;
/// use lineagex_core::LineageView;
///
/// let mut engine = Engine::new();
/// engine.ingest("CREATE TABLE web (cid int, page text);").unwrap();
/// engine.ingest("CREATE VIEW v AS SELECT page FROM web;").unwrap();
/// let answer = engine.query().from("web.page").downstream().run().unwrap();
/// assert_eq!(answer.columns[0].column.to_string(), "v.page");
/// ```
impl LineageView for Engine {
    fn settled_graph(&mut self) -> Result<&LineageGraph, LineageError> {
        self.graph()
    }

    fn run_diagnostics(&self) -> Vec<Diagnostic> {
        self.session_diagnostics.clone()
    }

    fn backend_name(&self) -> &'static str {
        "session"
    }

    fn settled_index(&mut self) -> Result<Arc<GraphIndex>, LineageError> {
        self.graph_index()
    }
}

/// One scheduled connected component of a refresh's dirty cone: its
/// member set plus its topological levels.
struct ComponentPlan {
    members: BTreeSet<String>,
    levels: Vec<Vec<String>>,
}

/// Per-entry extraction outcome inside a component: the settled lineage,
/// the optional trace, and the inferred-schema delta the extraction
/// contributed.
type ExtractOutcome = (
    String,
    Result<(QueryLineage, Option<TraceLog>, BTreeMap<String, BTreeSet<String>>), LineageError>,
);

/// Extract one component level by level against an immutable slice of
/// engine state, accumulating inferred-schema deltas locally. The
/// settled-lineage view is seeded with the members' already-settled
/// direct dependencies — extraction only ever looks up a query's direct
/// dependencies, so the thin slice is equivalent to the full map. A
/// failing level records its results and skips the component's remaining
/// levels (they could only see stale upstreams), leaving other
/// components untouched.
#[allow(clippy::too_many_arguments)]
fn extract_component(
    plan: &ComponentPlan,
    entries: &BTreeMap<String, EntryState>,
    settled: &BTreeMap<String, QueryLineage>,
    qd_ids: &BTreeSet<String>,
    catalog: &Catalog,
    options: &ExtractOptions,
    base_inferred: &BTreeMap<String, BTreeSet<String>>,
    inner_jobs: usize,
    level_us: &Histogram,
) -> Vec<ExtractOutcome> {
    let mut processed: BTreeMap<String, QueryLineage> = BTreeMap::new();
    for member in &plan.members {
        for dep in &entries[member].deps {
            if !plan.members.contains(dep) {
                if let Some(lineage) = settled.get(dep) {
                    processed.entry(dep.clone()).or_insert_with(|| lineage.clone());
                }
            }
        }
    }
    let mut extra: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut outcomes: Vec<ExtractOutcome> = Vec::new();
    let mut failed = false;
    for level in &plan.levels {
        if failed {
            break;
        }
        let _timer = level_us.time();
        // Within a level every entry sees the same frozen snapshot
        // (settled lineage + inferred schemas), so parallel and
        // sequential execution produce identical results.
        let mut snapshot = base_inferred.clone();
        for (table, columns) in &extra {
            snapshot.entry(table.clone()).or_default().extend(columns.iter().cloned());
        }
        let results = {
            let processed = &processed;
            let snapshot = &snapshot;
            run_level(level, inner_jobs, move |id| {
                let mut inferred = snapshot.clone();
                extract_entry(
                    entries[id].parsed(),
                    qd_ids,
                    processed,
                    catalog,
                    options,
                    &mut inferred,
                )
                .map(|(lineage, trace)| (lineage, trace, inferred_delta(snapshot, inferred)))
            })
        };
        for (id, result) in results {
            if let Ok((lineage, _, delta)) = &result {
                processed.insert(id.clone(), lineage.clone());
                for (table, columns) in delta {
                    extra.entry(table.clone()).or_default().extend(columns.iter().cloned());
                }
            } else {
                failed = true;
            }
            outcomes.push((id, result));
        }
    }
    outcomes
}

/// What one extraction added to the inferred-schema snapshot it started
/// from. A table key with an empty column set still counts (it records
/// the relation's existence as an external).
fn inferred_delta(
    snapshot: &BTreeMap<String, BTreeSet<String>>,
    local: BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut delta = BTreeMap::new();
    for (table, columns) in local {
        match snapshot.get(&table) {
            None => {
                delta.insert(table, columns);
            }
            Some(seen) => {
                let fresh: BTreeSet<String> = columns.difference(seen).cloned().collect();
                if !fresh.is_empty() {
                    delta.insert(table, fresh);
                }
            }
        }
    }
    delta
}

/// The node a catalog relation contributes to the graph's node map,
/// `None` when `name` is not an exact catalog key.
fn catalog_node(catalog: &Catalog, name: &str) -> Option<Node> {
    let schema = catalog.get(name)?;
    if schema.name != name {
        return None;
    }
    let kind = if schema.is_view() { NodeKind::View } else { NodeKind::BaseTable };
    Some(Node {
        name: schema.name.clone(),
        kind,
        columns: schema.column_names().map(String::from).collect(),
    })
}

/// Strip any schema qualifier and lower-case, mirroring the catalog's
/// name normalisation.
fn normalize(name: &str) -> String {
    name.rsplit('.').next().unwrap_or(name).to_lowercase()
}
