//! A content-hash AST cache: re-ingested identical SQL skips the parser.
//!
//! Long-lived sessions replay a lot of identical text — dashboards
//! re-issue the same queries, orchestrators re-apply the same view
//! definitions on every run. Keyed on an FNV-1a hash of the trimmed input
//! (with full-text verification, so a 64-bit collision can never serve
//! the wrong AST), the cache turns those replays into a clone of the
//! already-parsed statements.

use lineagex_core::LineageError;
use lineagex_sqlparse::ast::Statement;
use lineagex_sqlparse::parse_sql;
use std::collections::HashMap;

/// Default maximum number of cached scripts.
pub const DEFAULT_CAPACITY: usize = 1024;

/// A bounded parse cache with hit/miss counters.
#[derive(Debug, Clone)]
pub struct AstCache {
    entries: HashMap<u64, Vec<(String, Vec<Statement>)>>,
    len: usize,
    capacity: usize,
    /// Number of lookups served from the cache.
    pub hits: u64,
    /// Number of lookups that had to parse.
    pub misses: u64,
}

impl Default for AstCache {
    fn default() -> Self {
        AstCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl AstCache {
    /// A cache holding at most `capacity` scripts (0 disables caching).
    pub fn with_capacity(capacity: usize) -> Self {
        AstCache { entries: HashMap::new(), len: 0, capacity, hits: 0, misses: 0 }
    }

    /// Parse `sql`, serving the statements from the cache when the exact
    /// text (modulo surrounding whitespace) was parsed before.
    pub fn parse(&mut self, sql: &str) -> Result<Vec<Statement>, LineageError> {
        let text = sql.trim();
        let key = fnv1a(text.as_bytes());
        if let Some(bucket) = self.entries.get(&key) {
            // Verify the full text: a hash collision must never alias.
            if let Some((_, statements)) = bucket.iter().find(|(t, _)| t == text) {
                self.hits += 1;
                return Ok(statements.clone());
            }
        }
        self.misses += 1;
        let statements = parse_sql(text).map_err(|e| LineageError::Parse(e.to_string()))?;
        if self.capacity > 0 {
            if self.len >= self.capacity {
                // Whole-cache eviction keeps the bookkeeping trivial; a
                // session that overflows 1024 distinct scripts simply
                // starts a fresh generation.
                self.entries.clear();
                self.len = 0;
            }
            self.entries.entry(key).or_default().push((text.to_string(), statements.clone()));
            self.len += 1;
        }
        Ok(statements)
    }

    /// Number of cached scripts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_identical_text() {
        let mut cache = AstCache::default();
        let a = cache.parse("SELECT 1;").unwrap();
        let b = cache.parse("  SELECT 1;  ").unwrap(); // whitespace-insensitive
        assert_eq!(a, b);
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_text_misses() {
        let mut cache = AstCache::default();
        cache.parse("SELECT 1").unwrap();
        cache.parse("SELECT 2").unwrap();
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let mut cache = AstCache::default();
        assert!(cache.parse("SELEC oops").is_err());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_bounds_the_cache() {
        let mut cache = AstCache::with_capacity(2);
        cache.parse("SELECT 1").unwrap();
        cache.parse("SELECT 2").unwrap();
        cache.parse("SELECT 3").unwrap(); // evicts the full generation
        assert_eq!(cache.len(), 1);
        // Zero capacity disables caching entirely.
        let mut off = AstCache::with_capacity(0);
        off.parse("SELECT 1").unwrap();
        off.parse("SELECT 1").unwrap();
        assert_eq!(off.hits, 0);
        assert_eq!(off.misses, 2);
    }
}
