//! A content-hash AST cache: re-ingested identical SQL skips the parser.
//!
//! Long-lived sessions replay a lot of identical text — dashboards
//! re-issue the same queries, orchestrators re-apply the same view
//! definitions on every run. Keyed on an FNV-1a hash of the trimmed input
//! (with full-text verification, so a 64-bit collision can never serve
//! the wrong AST), the cache turns those replays into a clone of the
//! already-parsed statements.
//!
//! Parsing always goes through the *recovering* parser, so one cached
//! result serves both modes: strict callers ([`AstCache::parse`]) turn
//! the first recorded error into a hard failure, lenient callers
//! ([`AstCache::parse_recovering`]) get the healthy statements plus every
//! span-tagged error. A session replaying a partially-corrupt dashboard
//! script hits the cache either way.

use lineagex_core::LineageError;
use lineagex_sqlparse::ast::SpannedStatement;
use lineagex_sqlparse::{parse_statements_recovering_with, DialectKind, RecoveredScript};
use std::collections::HashMap;

/// Default maximum number of cached scripts.
pub const DEFAULT_CAPACITY: usize = 1024;

/// A bounded parse cache with hit/miss counters.
///
/// A session parses under exactly one [`DialectKind`] for its whole
/// lifetime (the engine pins it at construction), so the dialect is part
/// of the cache — not of every key.
#[derive(Debug, Clone)]
pub struct AstCache {
    entries: HashMap<u64, Vec<(String, RecoveredScript)>>,
    len: usize,
    capacity: usize,
    dialect: DialectKind,
    /// Number of lookups served from the cache.
    pub hits: u64,
    /// Number of lookups that had to parse.
    pub misses: u64,
}

impl Default for AstCache {
    fn default() -> Self {
        AstCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl AstCache {
    /// A cache holding at most `capacity` scripts (0 disables caching),
    /// parsing under the permissive ANSI core.
    pub fn with_capacity(capacity: usize) -> Self {
        AstCache::with_capacity_dialect(capacity, DialectKind::Ansi)
    }

    /// A cache parsing everything under `dialect`.
    pub fn with_capacity_dialect(capacity: usize, dialect: DialectKind) -> Self {
        AstCache { entries: HashMap::new(), len: 0, capacity, dialect, hits: 0, misses: 0 }
    }

    /// Parse `sql` strictly: the first unparsable region fails the whole
    /// script, like [`lineagex_sqlparse::parse_sql`].
    pub fn parse(&mut self, sql: &str) -> Result<Vec<SpannedStatement>, LineageError> {
        let script = self.parse_recovering(sql);
        match script.errors.first() {
            Some(error) => Err(LineageError::Parse(error.to_string())),
            None => Ok(script.statements),
        }
    }

    /// Parse `sql` with error recovery, serving the result from the cache
    /// when the exact text (modulo surrounding whitespace) was parsed
    /// before. Spans are relative to the trimmed text.
    pub fn parse_recovering(&mut self, sql: &str) -> RecoveredScript {
        let text = sql.trim();
        let key = fnv1a(text.as_bytes());
        if let Some(bucket) = self.entries.get(&key) {
            // Verify the full text: a hash collision must never alias.
            if let Some((_, script)) = bucket.iter().find(|(t, _)| t == text) {
                self.hits += 1;
                return script.clone();
            }
        }
        self.misses += 1;
        let script = parse_statements_recovering_with(text, self.dialect);
        if self.capacity > 0 {
            if self.len >= self.capacity {
                // Whole-cache eviction keeps the bookkeeping trivial; a
                // session that overflows 1024 distinct scripts simply
                // starts a fresh generation.
                self.entries.clear();
                self.len = 0;
            }
            self.entries.entry(key).or_default().push((text.to_string(), script.clone()));
            self.len += 1;
        }
        script
    }

    /// Number of cached scripts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_identical_text() {
        let mut cache = AstCache::default();
        let a = cache.parse("SELECT 1;").unwrap();
        let b = cache.parse("  SELECT 1;  ").unwrap(); // whitespace-insensitive
        assert_eq!(a, b);
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_text_misses() {
        let mut cache = AstCache::default();
        cache.parse("SELECT 1").unwrap();
        cache.parse("SELECT 2").unwrap();
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn corrupt_scripts_are_cached_with_their_errors() {
        let mut cache = AstCache::default();
        assert!(cache.parse("SELEC oops").is_err());
        // The recovered result (0 statements, 1 error) was cached: a
        // lenient re-ingest of the same text skips the parser.
        let script = cache.parse_recovering("SELEC oops");
        assert_eq!(cache.hits, 1);
        assert!(script.statements.is_empty());
        assert_eq!(script.errors.len(), 1);
    }

    #[test]
    fn recovering_parse_serves_partial_scripts() {
        let mut cache = AstCache::default();
        let script = cache.parse_recovering("SELECT 1; SELECT FROM; SELECT 2");
        assert_eq!(script.statements.len(), 2);
        assert_eq!(script.errors.len(), 1);
        // Strict parse of the same text reuses the cached recovery.
        assert!(cache.parse("SELECT 1; SELECT FROM; SELECT 2").is_err());
        assert_eq!(cache.hits, 1);
    }

    #[test]
    fn parses_under_its_pinned_dialect() {
        let mut cache = AstCache::with_capacity_dialect(16, DialectKind::TSql);
        let stmts = cache.parse("SELECT TOP 3 a FROM [raw t]").unwrap();
        assert_eq!(stmts.len(), 1);
        // The default (ANSI) cache rejects the same text.
        assert!(AstCache::default().parse("SELECT TOP 3 a FROM [raw t]").is_err());
    }

    #[test]
    fn capacity_bounds_the_cache() {
        let mut cache = AstCache::with_capacity(2);
        cache.parse("SELECT 1").unwrap();
        cache.parse("SELECT 2").unwrap();
        cache.parse("SELECT 3").unwrap(); // evicts the full generation
        assert_eq!(cache.len(), 1);
        // Zero capacity disables caching entirely.
        let mut off = AstCache::with_capacity(0);
        off.parse("SELECT 1").unwrap();
        off.parse("SELECT 1").unwrap();
        assert_eq!(off.hits, 0);
        assert_eq!(off.misses, 2);
    }
}
