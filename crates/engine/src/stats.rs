//! Session bookkeeping: per-statement ingest receipts and engine-level
//! counters.

use lineagex_core::Diagnostic;
use std::fmt;

/// What the engine did with one ingested statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestAction {
    /// A new lineage-bearing entry (view, CTAS, INSERT, UPDATE, SELECT).
    Defined,
    /// An existing entry was replaced by a different definition; its
    /// downstream cone is now dirty.
    Redefined,
    /// The statement re-defined an entry with byte-identical content;
    /// nothing was invalidated.
    Unchanged,
    /// Plain DDL: the catalog changed (added or replaced a base table).
    Schema,
    /// A `DROP` retracted entries and/or catalog schemas.
    Dropped,
    /// A statement carrying neither lineage nor schema (e.g. `DELETE`,
    /// `EXPLAIN`, transaction control).
    Skipped,
    /// A region of the ingested text failed to parse; lenient mode
    /// skipped it (see the receipt's diagnostics for the span).
    Failed,
}

/// The receipt for one ingested statement.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtId {
    /// Session-wide statement sequence number (1-based).
    pub seq: u64,
    /// The entry id or relation name the statement concerned.
    pub target: String,
    /// What the engine did with it.
    pub action: IngestAction,
    /// Diagnostics this statement produced at ingest time (parse errors,
    /// skipped noise, redefinition notices). Extraction-time diagnostics
    /// live on the query's lineage record and are retracted with it.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verb = match self.action {
            IngestAction::Defined => "defined",
            IngestAction::Redefined => "redefined",
            IngestAction::Unchanged => "unchanged",
            IngestAction::Schema => "schema",
            IngestAction::Dropped => "dropped",
            IngestAction::Skipped => "skipped",
            IngestAction::Failed => "failed",
        };
        write!(f, "#{} {} {}", self.seq, verb, self.target)
    }
}

/// Counters describing the work a session has done. The extraction
/// counters are the observable proof of incrementality: redefining one
/// view on a long log must bump `last_refresh_extractions` by the size of
/// its downstream cone, not by the size of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineStats {
    /// The SQL dialect name the session lexes and parses under
    /// ([`lineagex_sqlparse::DialectKind::name`]), pinned at engine
    /// construction. Carried in the stats so every stats surface (CLI
    /// summary, serve `stats` reply) reports which grammar produced the
    /// numbers.
    pub dialect: String,
    /// Statements ingested (including DDL, drops, skips, and — in
    /// lenient mode — unparsable regions).
    pub statements: u64,
    /// Lineage entries defined (first definitions only).
    pub defined: u64,
    /// Entry redefinitions (changed content).
    pub redefinitions: u64,
    /// Re-ingests of byte-identical entry definitions (no-ops).
    pub unchanged: u64,
    /// Entries and schemas removed by `DROP`.
    pub drops: u64,
    /// Unparsable regions skipped by lenient ingest.
    pub parse_failures: u64,
    /// Diagnostics currently live in the session: session-level ones
    /// (skips, noise, failures) plus every settled query's extraction
    /// diagnostics. Retracting a query (redefinition, `DROP`) takes its
    /// diagnostics out of this count.
    pub diagnostics: u64,
    /// Total per-query extractions performed over the session's lifetime.
    pub extractions: u64,
    /// Extractions performed by the most recent refresh.
    pub last_refresh_extractions: u64,
    /// Refreshes that did any work.
    pub refreshes: u64,
    /// Parser invocations skipped thanks to the AST cache.
    pub parse_cache_hits: u64,
    /// Parser invocations that missed the AST cache.
    pub parse_cache_misses: u64,
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats {
            dialect: lineagex_sqlparse::DialectKind::Ansi.name().to_string(),
            statements: 0,
            defined: 0,
            redefinitions: 0,
            unchanged: 0,
            drops: 0,
            parse_failures: 0,
            diagnostics: 0,
            extractions: 0,
            last_refresh_extractions: 0,
            refreshes: 0,
            parse_cache_hits: 0,
            parse_cache_misses: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_report_the_ansi_dialect() {
        assert_eq!(EngineStats::default().dialect, "ansi");
    }

    #[test]
    fn stmt_id_displays_compactly() {
        let id = StmtId {
            seq: 3,
            target: "v".into(),
            action: IngestAction::Redefined,
            diagnostics: Vec::new(),
        };
        assert_eq!(id.to_string(), "#3 redefined v");
    }
}
