//! The parallel extraction scheduler: topological leveling plus a scoped
//! worker pool.
//!
//! Extraction of one view needs the finished lineage of everything it
//! scans, and nothing else — so a batch of pending views parallelises by
//! *levels*: level 0 holds views whose dependencies are already settled,
//! level *n* holds views depending only on earlier levels. Within a level
//! every extraction is independent; between levels the engine merges
//! results, which keeps the shared state free of locks (workers only ever
//! hold shared references to a frozen snapshot).
//!
//! Both execution modes run the exact same algorithm — `jobs <= 1` just
//! skips the thread spawns — so parallel output is byte-identical to
//! sequential output by construction, which the property tests assert.

use std::collections::{BTreeMap, BTreeSet};

/// Group `nodes` into dependency levels: every node's dependencies (as
/// given by `deps_of`, already restricted however the caller likes) that
/// are themselves in `nodes` land in a strictly earlier level. Levels and
/// the ids inside them come out in deterministic sorted order.
///
/// Returns `Err(cycle)` — a path `[a, b, ..., a]` — when the nodes cannot
/// be levelled because they form a dependency cycle.
pub fn topo_levels(
    nodes: &BTreeSet<String>,
    mut deps_of: impl FnMut(&str) -> BTreeSet<String>,
) -> Result<Vec<Vec<String>>, Vec<String>> {
    // Dependencies restricted to the node set, self-edges dropped (a
    // self-scan degrades to an external in extraction, not a cycle).
    let deps: BTreeMap<String, BTreeSet<String>> = nodes
        .iter()
        .map(|n| {
            let mut d: BTreeSet<String> =
                deps_of(n).into_iter().filter(|d| nodes.contains(d)).collect();
            d.remove(n.as_str());
            (n.clone(), d)
        })
        .collect();

    // Kahn's algorithm in level batches: O(V log V + E) instead of the
    // former fixpoint's O(V · levels), which mattered once deep diamond
    // stacks pushed level counts into the hundreds. A node's level is
    // 1 + the maximum level of its in-set dependencies, so the output is
    // identical to the fixpoint formulation (the unit tests pin it).
    let mut waiting: BTreeMap<&str, usize> = BTreeMap::new();
    let mut dependents: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (node, node_deps) in &deps {
        waiting.insert(node, node_deps.len());
        for dep in node_deps {
            dependents.entry(dep).or_default().push(node);
        }
    }
    let mut ready: Vec<&str> =
        deps.iter().filter(|(_, d)| d.is_empty()).map(|(n, _)| n.as_str()).collect();
    let mut levels: Vec<Vec<String>> = Vec::new();
    let mut placed = 0usize;
    while !ready.is_empty() {
        placed += ready.len();
        let mut next: Vec<&str> = Vec::new();
        for node in &ready {
            for dependent in dependents.get(node).map_or(&[][..], |d| d) {
                let n = waiting.get_mut(dependent).expect("every node has a waiting count");
                *n -= 1;
                if *n == 0 {
                    next.push(dependent);
                }
            }
        }
        next.sort_unstable();
        levels.push(ready.iter().map(|n| n.to_string()).collect());
        ready = next;
    }
    if placed < nodes.len() {
        let remaining: BTreeSet<String> =
            waiting.iter().filter(|(_, n)| **n > 0).map(|(node, _)| node.to_string()).collect();
        return Err(find_cycle(&remaining, &deps));
    }
    Ok(levels)
}

/// Partition `nodes` into connected components of the dependency graph
/// (edges = `deps_of` restricted to the node set, direction ignored).
/// Components come out sorted by their smallest member, members sorted —
/// fully deterministic, so a scheduler iterating components in order
/// produces the same merge order no matter how they executed.
///
/// Two nodes sharing only an *out-of-set* dependency (say, a base table)
/// are **not** connected: nothing about one's extraction can influence
/// the other, which is exactly the independence component-sharded
/// extraction exploits.
pub fn components(
    nodes: &BTreeSet<String>,
    mut deps_of: impl FnMut(&str) -> BTreeSet<String>,
) -> Vec<BTreeSet<String>> {
    let ids: Vec<&String> = nodes.iter().collect();
    let index: BTreeMap<&str, usize> =
        ids.iter().enumerate().map(|(i, s)| (s.as_str(), i)).collect();
    let mut parent: Vec<usize> = (0..ids.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]]; // path halving
            i = parent[i];
        }
        i
    }
    for (i, id) in ids.iter().enumerate() {
        for dep in deps_of(id) {
            if let Some(&j) = index.get(dep.as_str()) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (i, id) in ids.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().insert((*id).clone());
    }
    // Roots are minimal indices of their group and ids are sorted, so
    // ascending root order IS ascending smallest-member order.
    groups.into_values().collect()
}

/// Run `work(0..count)` over a shared work queue on up to `jobs` scoped
/// worker threads, returning results in index order regardless of
/// completion order. Unlike [`run_level`]'s static chunking, tasks here
/// are claimed one at a time — the right shape when tasks have very
/// uneven sizes (whole dependency components vs single extractions).
/// `jobs <= 1` (or a single task) runs inline on the calling thread.
pub fn run_tasks<T, F>(count: usize, jobs: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || count <= 1 {
        return (0..count).map(&work).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let next = &next;
        let work = &work;
        let handles: Vec<_> = (0..jobs.min(count))
            .map(|_| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, work(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, result) in handle.join().expect("component worker panicked") {
                out[i] = Some(result);
            }
        }
    });
    out.into_iter().map(|slot| slot.expect("every task index was claimed exactly once")).collect()
}

/// Walk unresolved dependencies until a node repeats, producing the cycle
/// path in the `[a, b, ..., a]` shape `LineageError::DependencyCycle`
/// reports.
fn find_cycle(
    remaining: &BTreeSet<String>,
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<String> {
    let start = remaining.iter().next().expect("remaining is non-empty");
    let mut path: Vec<String> = vec![start.clone()];
    loop {
        let current = path.last().expect("path starts non-empty");
        let next = deps[current]
            .iter()
            .find(|d| remaining.contains(*d))
            .expect("every stuck node has an unresolved dependency")
            .clone();
        if let Some(pos) = path.iter().position(|p| p == &next) {
            let mut cycle = path.split_off(pos);
            cycle.push(next);
            return cycle;
        }
        path.push(next);
    }
}

/// Run `work` over every id of one level, on up to `jobs` scoped worker
/// threads, returning `(id, result)` pairs in input order regardless of
/// completion order. `jobs <= 1` (or a single-item level) runs inline on
/// the calling thread; both paths produce identical output.
pub fn run_level<T, F>(ids: &[String], jobs: usize, work: F) -> Vec<(String, T)>
where
    T: Send,
    F: Fn(&str) -> T + Sync,
{
    if jobs <= 1 || ids.len() <= 1 {
        return ids.iter().map(|id| (id.clone(), work(id))).collect();
    }
    let workers = jobs.min(ids.len());
    let chunk_size = ids.len().div_ceil(workers);
    let work = &work;
    let mut out = Vec::with_capacity(ids.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk.iter().map(|id| (id.clone(), work(id))).collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("extraction worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn levels_respect_dependencies() {
        let nodes = set(&["a", "b", "c", "d"]);
        // a <- b <- c, and d independent.
        let levels = topo_levels(&nodes, |n| match n {
            "b" => set(&["a"]),
            "c" => set(&["b"]),
            _ => BTreeSet::new(),
        })
        .unwrap();
        assert_eq!(levels, vec![vec!["a", "d"], vec!["b"], vec!["c"]]);
    }

    #[test]
    fn deps_outside_the_node_set_are_satisfied() {
        let nodes = set(&["x"]);
        let levels = topo_levels(&nodes, |_| set(&["already_done"])).unwrap();
        assert_eq!(levels, vec![vec!["x"]]);
    }

    #[test]
    fn self_edges_are_not_cycles() {
        let nodes = set(&["x"]);
        let levels = topo_levels(&nodes, |_| set(&["x"])).unwrap();
        assert_eq!(levels, vec![vec!["x"]]);
    }

    #[test]
    fn cycles_are_reported_as_paths() {
        let nodes = set(&["a", "b", "c"]);
        let err = topo_levels(&nodes, |n| match n {
            "a" => set(&["b"]),
            "b" => set(&["a"]),
            _ => BTreeSet::new(),
        })
        .unwrap_err();
        assert_eq!(err, vec!["a", "b", "a"]);
    }

    #[test]
    fn components_split_on_connectivity_not_shared_externals() {
        let nodes = set(&["a", "b", "c", "d", "e"]);
        // a <- b, c <- d; e shares only the out-of-set dep "base".
        let comps = components(&nodes, |n| match n {
            "b" => set(&["a"]),
            "d" => set(&["c"]),
            _ => set(&["base"]),
        });
        assert_eq!(comps, vec![set(&["a", "b"]), set(&["c", "d"]), set(&["e"])]);
    }

    #[test]
    fn components_are_sorted_by_smallest_member() {
        let nodes = set(&["m", "z", "a"]);
        // z <- a joins {a, z}; m alone.
        let comps = components(&nodes, |n| if n == "z" { set(&["a"]) } else { BTreeSet::new() });
        assert_eq!(comps, vec![set(&["a", "z"]), set(&["m"])]);
    }

    #[test]
    fn deep_chains_level_in_linear_time() {
        // 500 levels: the fixpoint formulation would take 250k scans.
        let nodes: BTreeSet<String> = (0..500).map(|i| format!("v{i:03}")).collect();
        let levels = topo_levels(&nodes, |n| {
            let i: usize = n[1..].parse().unwrap();
            if i == 0 {
                BTreeSet::new()
            } else {
                set(&[&format!("v{:03}", i - 1)])
            }
        })
        .unwrap();
        assert_eq!(levels.len(), 500);
        assert!(levels.iter().all(|l| l.len() == 1));
    }

    #[test]
    fn run_tasks_matches_inline_execution() {
        let sequential = run_tasks(23, 1, |i| i * i);
        let parallel = run_tasks(23, 4, |i| i * i);
        assert_eq!(sequential, parallel);
        assert_eq!(parallel[7], 49);
        assert!(run_tasks(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_level_orders_results_deterministically() {
        let ids: Vec<String> = (0..17).map(|i| format!("id_{i:02}")).collect();
        let sequential = run_level(&ids, 1, |id| id.len());
        let parallel = run_level(&ids, 4, |id| id.len());
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 17);
        assert_eq!(sequential[0].0, "id_00");
    }
}
