//! The parallel extraction scheduler: topological leveling plus a scoped
//! worker pool.
//!
//! Extraction of one view needs the finished lineage of everything it
//! scans, and nothing else — so a batch of pending views parallelises by
//! *levels*: level 0 holds views whose dependencies are already settled,
//! level *n* holds views depending only on earlier levels. Within a level
//! every extraction is independent; between levels the engine merges
//! results, which keeps the shared state free of locks (workers only ever
//! hold shared references to a frozen snapshot).
//!
//! Both execution modes run the exact same algorithm — `jobs <= 1` just
//! skips the thread spawns — so parallel output is byte-identical to
//! sequential output by construction, which the property tests assert.

use std::collections::{BTreeMap, BTreeSet};

/// Group `nodes` into dependency levels: every node's dependencies (as
/// given by `deps_of`, already restricted however the caller likes) that
/// are themselves in `nodes` land in a strictly earlier level. Levels and
/// the ids inside them come out in deterministic sorted order.
///
/// Returns `Err(cycle)` — a path `[a, b, ..., a]` — when the nodes cannot
/// be levelled because they form a dependency cycle.
pub fn topo_levels(
    nodes: &BTreeSet<String>,
    mut deps_of: impl FnMut(&str) -> BTreeSet<String>,
) -> Result<Vec<Vec<String>>, Vec<String>> {
    // Dependencies restricted to the node set, self-edges dropped (a
    // self-scan degrades to an external in extraction, not a cycle).
    let deps: BTreeMap<String, BTreeSet<String>> = nodes
        .iter()
        .map(|n| {
            let mut d: BTreeSet<String> =
                deps_of(n).into_iter().filter(|d| nodes.contains(d)).collect();
            d.remove(n.as_str());
            (n.clone(), d)
        })
        .collect();

    let mut levels: Vec<Vec<String>> = Vec::new();
    let mut placed: BTreeSet<String> = BTreeSet::new();
    let mut remaining: BTreeSet<String> = nodes.clone();
    while !remaining.is_empty() {
        let ready: Vec<String> = remaining
            .iter()
            .filter(|n| deps[*n].iter().all(|d| placed.contains(d)))
            .cloned()
            .collect();
        if ready.is_empty() {
            return Err(find_cycle(&remaining, &deps));
        }
        for r in &ready {
            remaining.remove(r);
            placed.insert(r.clone());
        }
        levels.push(ready);
    }
    Ok(levels)
}

/// Walk unresolved dependencies until a node repeats, producing the cycle
/// path in the `[a, b, ..., a]` shape `LineageError::DependencyCycle`
/// reports.
fn find_cycle(
    remaining: &BTreeSet<String>,
    deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<String> {
    let start = remaining.iter().next().expect("remaining is non-empty");
    let mut path: Vec<String> = vec![start.clone()];
    loop {
        let current = path.last().expect("path starts non-empty");
        let next = deps[current]
            .iter()
            .find(|d| remaining.contains(*d))
            .expect("every stuck node has an unresolved dependency")
            .clone();
        if let Some(pos) = path.iter().position(|p| p == &next) {
            let mut cycle = path.split_off(pos);
            cycle.push(next);
            return cycle;
        }
        path.push(next);
    }
}

/// Run `work` over every id of one level, on up to `jobs` scoped worker
/// threads, returning `(id, result)` pairs in input order regardless of
/// completion order. `jobs <= 1` (or a single-item level) runs inline on
/// the calling thread; both paths produce identical output.
pub fn run_level<T, F>(ids: &[String], jobs: usize, work: F) -> Vec<(String, T)>
where
    T: Send,
    F: Fn(&str) -> T + Sync,
{
    if jobs <= 1 || ids.len() <= 1 {
        return ids.iter().map(|id| (id.clone(), work(id))).collect();
    }
    let workers = jobs.min(ids.len());
    let chunk_size = ids.len().div_ceil(workers);
    let work = &work;
    let mut out = Vec::with_capacity(ids.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk.iter().map(|id| (id.clone(), work(id))).collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("extraction worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> BTreeSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn levels_respect_dependencies() {
        let nodes = set(&["a", "b", "c", "d"]);
        // a <- b <- c, and d independent.
        let levels = topo_levels(&nodes, |n| match n {
            "b" => set(&["a"]),
            "c" => set(&["b"]),
            _ => BTreeSet::new(),
        })
        .unwrap();
        assert_eq!(levels, vec![vec!["a", "d"], vec!["b"], vec!["c"]]);
    }

    #[test]
    fn deps_outside_the_node_set_are_satisfied() {
        let nodes = set(&["x"]);
        let levels = topo_levels(&nodes, |_| set(&["already_done"])).unwrap();
        assert_eq!(levels, vec![vec!["x"]]);
    }

    #[test]
    fn self_edges_are_not_cycles() {
        let nodes = set(&["x"]);
        let levels = topo_levels(&nodes, |_| set(&["x"])).unwrap();
        assert_eq!(levels, vec![vec!["x"]]);
    }

    #[test]
    fn cycles_are_reported_as_paths() {
        let nodes = set(&["a", "b", "c"]);
        let err = topo_levels(&nodes, |n| match n {
            "a" => set(&["b"]),
            "b" => set(&["a"]),
            _ => BTreeSet::new(),
        })
        .unwrap_err();
        assert_eq!(err, vec!["a", "b", "a"]);
    }

    #[test]
    fn run_level_orders_results_deterministically() {
        let ids: Vec<String> = (0..17).map(|i| format!("id_{i:02}")).collect();
        let sequential = run_level(&ids, 1, |id| id.len());
        let parallel = run_level(&ids, 4, |id| id.len());
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 17);
        assert_eq!(sequential[0].0, "id_00");
    }
}
