//! # lineagex-engine
//!
//! An **incremental, parallel lineage engine** for long-lived sessions —
//! the service core on top of the batch pipeline in `lineagex-core`.
//!
//! The paper's pipeline (Fig. 3) is one-shot: read a query log, build the
//! Query Dictionary, extract everything. A production lineage service
//! instead sees a *stream* of DDL/DML over time and must answer lineage
//! questions continuously. This crate adds exactly that:
//!
//! * [`Engine::ingest`] — streaming preprocessing: statements parse
//!   through a content-hash [`cache::AstCache`], update the catalog
//!   incrementally, and maintain a **view dependency DAG** (edges from
//!   [`deps::referenced_relations`]) with dirty tracking, so redefining
//!   or dropping one view invalidates only its downstream cone;
//! * [`Engine::refresh`] — the **parallel extraction scheduler**:
//!   [`schedule::topo_levels`] levels the dirty cone and
//!   [`schedule::run_level`] extracts each level's independent views
//!   concurrently on a `std::thread::scope` worker pool (`jobs` option);
//! * [`Engine::graph`] / [`Engine::lineage_of`] / [`Engine::impact_of`] —
//!   lineage queries between ingests, over a lazily-settled graph.
//!
//! Two invariants tie the engine back to the paper's semantics, asserted
//! by the workspace property tests over generator workloads:
//!
//! 1. **incremental ≡ batch** — statement-at-a-time ingestion settles to
//!    the same graph (nodes and per-query lineage) as a one-shot
//!    `LineageX::run` over the same log;
//! 2. **parallel ≡ sequential** — `jobs > 1` produces byte-identical
//!    results to `jobs = 1`, because levels freeze their inputs and merge
//!    deterministically.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod deps;
mod engine;
pub mod schedule;
mod stats;

pub use cache::AstCache;
pub use deps::referenced_relations;
pub use engine::{Engine, EngineOptions, EngineSnapshot};
pub use stats::{EngineStats, IngestAction, StmtId};

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::{lineagex, LineageError, NodeKind, SourceColumn};
    use lineagex_datasets::{generator, GeneratorConfig};

    const PIPELINE: &str = "
        CREATE TABLE web (cid int, date date, page text, reg boolean);
        CREATE VIEW webinfo AS SELECT cid AS wcid, page AS wpage FROM web WHERE reg;
        CREATE VIEW info AS SELECT wpage FROM webinfo;
    ";

    #[test]
    fn streaming_ingest_matches_one_shot() {
        let mut engine = Engine::new();
        for stmt in PIPELINE.split(';').filter(|s| !s.trim().is_empty()) {
            engine.ingest(stmt).unwrap();
        }
        let one_shot = lineagex(PIPELINE).unwrap();
        let graph = engine.graph().unwrap();
        assert_eq!(graph.queries, one_shot.graph.queries);
        assert_eq!(graph.nodes, one_shot.graph.nodes);
    }

    #[test]
    fn out_of_order_ingest_settles_after_dependency_arrives() {
        let mut engine = Engine::new();
        // info scans webinfo before webinfo exists: extracted as external.
        engine.ingest("CREATE VIEW info AS SELECT wpage FROM webinfo").unwrap();
        assert_eq!(engine.graph().unwrap().nodes["webinfo"].kind, NodeKind::External);
        // The dependency arriving re-extracts info against the real view.
        engine
            .ingest(
                "CREATE TABLE web (cid int, page text, reg boolean);
                 CREATE VIEW webinfo AS SELECT cid AS wcid, page AS wpage FROM web WHERE reg",
            )
            .unwrap();
        let graph = engine.graph().unwrap();
        assert_eq!(graph.nodes["webinfo"].kind, NodeKind::View);
        assert_eq!(
            graph.queries["info"].outputs[0].ccon,
            std::collections::BTreeSet::from([SourceColumn::new("webinfo", "wpage")])
        );
    }

    #[test]
    fn redefinition_reextracts_only_the_downstream_cone() {
        let mut engine = Engine::new();
        engine
            .ingest(
                "CREATE TABLE a (x int); CREATE TABLE b (y int);
                 CREATE VIEW va AS SELECT x FROM a;
                 CREATE VIEW vb AS SELECT y FROM b;
                 CREATE VIEW downstream AS SELECT x FROM va;",
            )
            .unwrap();
        assert_eq!(engine.refresh().unwrap(), 3);
        // Redefining va must re-extract va + downstream, but not vb.
        engine.ingest("CREATE VIEW va AS SELECT x + x AS x FROM a").unwrap();
        assert_eq!(engine.downstream_cone("va"), ["downstream", "va"].map(String::from).into());
        assert_eq!(engine.refresh().unwrap(), 2);
        assert_eq!(engine.stats().last_refresh_extractions, 2);
        assert_eq!(engine.stats().redefinitions, 1);
    }

    #[test]
    fn unchanged_reingest_is_a_no_op() {
        let mut engine = Engine::new();
        let view = "CREATE VIEW v AS SELECT 1 AS one";
        engine.ingest(view).unwrap();
        engine.refresh().unwrap();
        let receipts = engine.ingest(view).unwrap();
        assert_eq!(receipts[0].action, IngestAction::Unchanged);
        assert_eq!(engine.refresh().unwrap(), 0);
        // And the identical text was served from the AST cache.
        assert_eq!(engine.stats().parse_cache_hits, 1);
    }

    #[test]
    fn drop_retracts_and_dirties_dependents() {
        let mut engine = Engine::new();
        engine
            .ingest(
                "CREATE TABLE t (x int);
                 CREATE VIEW v1 AS SELECT x FROM t;
                 CREATE VIEW v2 AS SELECT x FROM v1;",
            )
            .unwrap();
        engine.refresh().unwrap();
        let receipts = engine.ingest("DROP VIEW v1").unwrap();
        assert_eq!(receipts[0].action, IngestAction::Dropped);
        let graph = engine.graph().unwrap();
        // v1 degrades to an inferred external scanned by v2.
        assert!(!graph.queries.contains_key("v1"));
        assert_eq!(graph.nodes["v1"].kind, NodeKind::External);
        assert!(graph.queries["v2"].tables.contains("v1"));
        assert_eq!(engine.stats().drops, 1);
    }

    #[test]
    fn ddl_arriving_late_upgrades_dependents() {
        let mut engine = Engine::new();
        engine.ingest("CREATE VIEW v AS SELECT page FROM web").unwrap();
        assert!(engine.graph().unwrap().queries["v"]
            .diagnostics
            .iter()
            .any(|d| d.code == lineagex_core::DiagnosticCode::UnknownRelation));
        assert!(engine.stats().diagnostics > 0);
        engine.ingest("CREATE TABLE web (cid int, page text)").unwrap();
        let graph = engine.graph().unwrap();
        assert_eq!(graph.nodes["web"].kind, NodeKind::BaseTable);
        assert!(graph.queries["v"].diagnostics.is_empty());
    }

    #[test]
    fn insert_reextracts_when_target_schema_changes() {
        let mut engine = Engine::new();
        engine.ingest("CREATE TABLE t (a int, b int); INSERT INTO t SELECT 10, 20").unwrap();
        // Output names come from the target's catalog schema.
        assert_eq!(engine.graph().unwrap().queries["t"].output_names(), vec!["a", "b"]);
        // Redefining the target's schema must re-extract the INSERT: its
        // lineage record is derived from the catalog, not just its source
        // query.
        engine.ingest("CREATE TABLE t (x int, y int)").unwrap();
        let graph = engine.graph().unwrap();
        assert_eq!(graph.queries["t"].output_names(), vec!["x", "y"]);
        assert_eq!(graph.nodes["t"].columns, vec!["x", "y"]);
    }

    #[test]
    fn insert_targets_disambiguate_like_the_dictionary() {
        let mut engine = Engine::new();
        engine
            .ingest(
                "CREATE TABLE t (a int); CREATE TABLE s (b int);
                 INSERT INTO t SELECT b FROM s; INSERT INTO t SELECT b + 1 FROM s;",
            )
            .unwrap();
        let graph = engine.graph().unwrap();
        assert!(graph.queries.contains_key("t"));
        assert!(graph.queries.contains_key("t#2"));
    }

    #[test]
    fn cycles_are_reported() {
        let mut engine = Engine::new();
        engine
            .ingest("CREATE VIEW a AS SELECT * FROM b; CREATE VIEW b AS SELECT * FROM a")
            .unwrap();
        match engine.refresh().unwrap_err() {
            LineageError::DependencyCycle(path) => assert_eq!(path, vec!["a", "b", "a"]),
            other => panic!("expected cycle, got {other}"),
        }
        // A correcting redefinition recovers the session.
        engine.ingest("CREATE TABLE t (x int); CREATE VIEW b AS SELECT x FROM t").unwrap();
        let graph = engine.graph().unwrap();
        assert_eq!(graph.queries["a"].output_names(), vec!["x"]);
    }

    #[test]
    fn lineage_and_impact_answer_between_ingests() {
        let mut engine = Engine::new();
        engine.ingest(PIPELINE).unwrap();
        let lineage = engine.lineage_of("webinfo", "wpage").unwrap().unwrap();
        assert!(lineage.contains(&SourceColumn::new("web", "page")));
        let impact = engine.impact_of("web", "page").unwrap();
        assert!(impact.contains(&SourceColumn::new("info", "wpage")));
        assert!(engine.lineage_of("webinfo", "ghost").unwrap().is_none());
    }

    #[test]
    fn parallel_batch_equals_sequential_on_generated_workload() {
        let workload =
            generator::generate(&GeneratorConfig { views: 40, ..GeneratorConfig::seeded(11) });
        let sql = workload.full_sql();
        let mut sequential = Engine::new();
        sequential.ingest(&sql).unwrap();
        sequential.refresh().unwrap();
        let mut parallel =
            Engine::with_options(EngineOptions { jobs: 4, ..EngineOptions::default() });
        parallel.ingest(&sql).unwrap();
        parallel.refresh().unwrap();
        assert_eq!(sequential.graph().unwrap(), parallel.graph().unwrap());
        // And both match the one-shot pipeline and the ground truth.
        let one_shot = lineagex(&sql).unwrap();
        assert_eq!(parallel.graph().unwrap().queries, one_shot.graph.queries);
        assert!(workload.ground_truth.diff(parallel.graph().unwrap()).is_empty());
    }

    #[test]
    fn failed_refresh_keeps_failing_entries_dirty() {
        let mut engine = Engine::new();
        engine.ingest("CREATE TABLE t (a int)").unwrap();
        // b references a column a's schema lacks after the redefinition.
        engine.ingest("CREATE VIEW v AS SELECT t.ghost FROM t").unwrap();
        assert!(engine.refresh().is_err());
        assert!(engine.has_pending_work());
        // Fixing the view clears the backlog.
        engine.ingest("CREATE VIEW v AS SELECT t.a FROM t").unwrap();
        assert_eq!(engine.refresh().unwrap(), 1);
        assert!(!engine.has_pending_work());
    }

    fn lenient_engine() -> Engine {
        Engine::with_options(EngineOptions {
            extract: lineagex_core::ExtractOptions::new().with_lenient(),
            ..EngineOptions::default()
        })
    }

    #[test]
    fn lenient_ingest_skips_unparsable_regions() {
        use lineagex_core::DiagnosticCode;
        let mut engine = lenient_engine();
        let receipts = engine
            .ingest("CREATE TABLE t (a int);\nSELECT FROM oops;\nCREATE VIEW v AS SELECT a FROM t;")
            .unwrap();
        assert_eq!(receipts.len(), 3);
        assert_eq!(receipts[1].action, IngestAction::Failed);
        assert_eq!(receipts[1].diagnostics[0].code, DiagnosticCode::ParseError);
        assert_eq!(receipts[1].diagnostics[0].span.unwrap().line, 2);
        // The healthy statements around the corrupt one still landed.
        let graph = engine.graph().unwrap();
        assert_eq!(graph.queries["v"].output_names(), vec!["a"]);
        assert_eq!(engine.stats().parse_failures, 1);
        assert!(engine.stats().diagnostics >= 1);
        // Strict mode fails the same ingest outright.
        let mut strict = Engine::new();
        assert!(strict.ingest("SELECT FROM oops").is_err());
    }

    #[test]
    fn lenient_redefinition_receipt_carries_diagnostic() {
        use lineagex_core::DiagnosticCode;
        let mut engine = lenient_engine();
        engine.ingest("CREATE VIEW v AS SELECT 1 AS a").unwrap();
        let receipts = engine.ingest("CREATE VIEW v AS SELECT 2 AS a").unwrap();
        assert_eq!(receipts[0].action, IngestAction::Redefined);
        assert_eq!(receipts[0].diagnostics[0].code, DiagnosticCode::DuplicateQueryId);
    }

    #[test]
    fn lenient_cycle_breaks_with_partial_stub() {
        use lineagex_core::DiagnosticCode;
        let log = "CREATE VIEW a AS SELECT * FROM b; CREATE VIEW b AS SELECT * FROM a";
        let mut engine = lenient_engine();
        engine.ingest(log).unwrap();
        let graph = engine.graph().unwrap();
        // The member that closes the cycle is stubbed (partial with the
        // cycle diagnostic); the other extracted against the stub — the
        // same choice the batch deferral stack makes.
        let stub = &graph.queries["b"];
        assert!(stub.partial);
        assert_eq!(stub.diagnostics[0].code, DiagnosticCode::DependencyCycle);
        assert!(!graph.queries["a"].partial);
        let batch = lineagex_core::LineageX::new().lenient().run(log).unwrap();
        assert_eq!(&graph.queries, &batch.graph.queries);
        // A correcting redefinition heals the session.
        engine.ingest("CREATE TABLE t (x int); CREATE VIEW b AS SELECT x FROM t").unwrap();
        let graph = engine.graph().unwrap();
        assert_eq!(graph.queries["a"].output_names(), vec!["x"]);
        assert!(!graph.queries["a"].partial);
    }

    #[test]
    fn diagnostics_are_retracted_with_their_query() {
        let mut engine = Engine::new();
        engine.ingest("CREATE VIEW v AS SELECT page FROM web").unwrap();
        engine.refresh().unwrap();
        // UnknownRelation + InferredColumn diagnostics live on v.
        let before = engine.stats().diagnostics;
        assert!(before >= 2, "expected live diagnostics, got {before}");
        // Redefining v over a known table retracts its diagnostics.
        engine.ingest("CREATE TABLE t (a int); CREATE VIEW v AS SELECT a FROM t").unwrap();
        engine.refresh().unwrap();
        assert_eq!(engine.stats().diagnostics, 0);
        // And dropping a diagnostic-carrying query removes them too.
        engine.ingest("CREATE VIEW w AS SELECT page FROM web").unwrap();
        engine.refresh().unwrap();
        assert!(engine.stats().diagnostics > 0);
        engine.ingest("DROP VIEW w").unwrap();
        engine.refresh().unwrap();
        assert_eq!(engine.stats().diagnostics, 0);
    }

    #[test]
    fn noise_statements_are_skipped_with_receipts() {
        use lineagex_core::DiagnosticCode;
        let mut engine = Engine::new();
        let receipts = engine.ingest("BEGIN; CREATE TABLE t (a int); SET x = 1; COMMIT").unwrap();
        let actions: Vec<IngestAction> = receipts.iter().map(|r| r.action).collect();
        assert_eq!(
            actions,
            vec![
                IngestAction::Skipped,
                IngestAction::Schema,
                IngestAction::Skipped,
                IngestAction::Skipped,
            ]
        );
        assert!(receipts[0].diagnostics.iter().all(|d| d.code == DiagnosticCode::NoiseStatement));
        assert_eq!(engine.diagnostics().len(), 3);
    }

    #[test]
    fn lineage_view_unifies_batch_and_session() {
        use lineagex_core::LineageView;
        let mut engine = Engine::new();
        engine.ingest(PIPELINE).unwrap();
        let mut batch = lineagex(PIPELINE).unwrap();
        // Identical code runs over either backend through the trait…
        let session_answer =
            engine.query().from("web.page").downstream().max_depth(3).run().unwrap();
        let batch_answer = batch.query().from("web.page").downstream().max_depth(3).run().unwrap();
        assert_eq!(session_answer, batch_answer);
        assert_eq!(session_answer.columns.len(), 2);
        // …and the versioned wire document is byte-identical.
        assert_eq!(engine.report_v2().unwrap().to_json(), batch.report_v2().unwrap().to_json());
        assert_eq!(engine.backend_name(), "session");
        assert_eq!(batch.backend_name(), "batch");
        assert_eq!(
            engine.column_lineage("webinfo", "wpage").unwrap(),
            batch.column_lineage("webinfo", "wpage").unwrap()
        );
        assert_eq!(engine.graph_stats().unwrap(), batch.graph_stats().unwrap());
    }

    #[test]
    fn result_packages_session_state() {
        let mut engine = Engine::new();
        engine.ingest(PIPELINE).unwrap();
        engine.ingest("DELETE FROM web").unwrap();
        let result = engine.result().unwrap();
        assert_eq!(result.graph.queries.len(), 2);
        assert!(result.deferrals.is_empty());
        assert_eq!(result.diagnostics.len(), 1);
    }

    #[test]
    fn graph_index_is_cached_between_queries() {
        let mut engine = Engine::new();
        engine.ingest(PIPELINE).unwrap();
        let first = engine.graph_index().unwrap();
        let second = engine.graph_index().unwrap();
        assert!(std::sync::Arc::ptr_eq(&first, &second), "settled session must reuse the index");
        // A no-op refresh (nothing dirty) keeps the cache too.
        assert_eq!(engine.refresh().unwrap(), 0);
        assert!(std::sync::Arc::ptr_eq(&first, &engine.graph_index().unwrap()));
    }

    #[test]
    fn graph_index_invalidates_on_redefinition() {
        let mut engine = Engine::new();
        engine.ingest(PIPELINE).unwrap();
        let before = engine.graph_index().unwrap();
        assert!(before.lookup_column("webinfo", "wpage").is_some());
        // Redefine the hub view (same outputs, no WHERE): the next
        // settled index must be a fresh build reflecting the new lineage
        // — the `web.reg` reference edges are gone — not the cached
        // revision.
        engine
            .ingest("CREATE VIEW webinfo AS SELECT cid AS wcid, page AS wpage FROM web;")
            .unwrap();
        let after = engine.graph_index().unwrap();
        assert!(!std::sync::Arc::ptr_eq(&before, &after), "redefinition must rebuild the index");
        assert!(after.edge_count() < before.edge_count(), "reference edges must be gone");
        // Answers through the view surface see the new shape: web.reg no
        // longer impacts anything.
        use lineagex_core::LineageView;
        let answer = engine.query().from("web.reg").downstream().run().unwrap();
        assert!(answer.columns.is_empty());
    }

    #[test]
    fn graph_index_invalidates_on_drop() {
        let mut engine = Engine::new();
        engine.ingest(PIPELINE).unwrap();
        let before = engine.graph_index().unwrap();
        // DROP retracts from the settled graph without needing a refresh:
        // the cached index must not survive it.
        engine.ingest("DROP VIEW info;").unwrap();
        let after = engine.graph_index().unwrap();
        assert!(!std::sync::Arc::ptr_eq(&before, &after), "drop must rebuild the index");
        assert!(before.lookup_relation("info").is_some());
        assert!(after.lookup_relation("info").is_none());
    }

    #[test]
    fn engine_impact_runs_on_the_cached_index() {
        let mut engine = Engine::new();
        engine.ingest(PIPELINE).unwrap();
        let report = engine.impact_of("web", "page").unwrap();
        let batch = lineagex(PIPELINE).unwrap();
        let legacy = lineagex_core::impact_of(&batch.graph, &SourceColumn::new("web", "page"));
        assert_eq!(report.impacted(), legacy.impacted());
        assert!(report.contains(&SourceColumn::new("info", "wpage")));
    }
}
