//! # lineagex-cli
//!
//! The `lineagex` command-line tool: extract column lineage from SQL
//! files, run impact analyses, inspect simulated `EXPLAIN` plans, and
//! compare against the SQLLineage-like baseline.
//!
//! ```text
//! lineagex extract  queries.sql [--ddl schema.sql] [--json out.json]
//!                   [--dot out.dot] [--html out.html] [--trace]
//!                   [--ambiguity all|first|error] [--no-auto-inference]
//!                   [--jobs N]
//! lineagex session  [--ddl schema.sql] [--jobs N]
//! lineagex serve    [--addr host:port] [--ddl schema.sql] [--jobs N]
//! lineagex client   <host:port> <op> [args]
//! lineagex impact   <table.column> queries.sql [--ddl schema.sql]
//! lineagex path     <from.column> <to.column> queries.sql [--ddl schema.sql]
//! lineagex explain  queries.sql --ddl schema.sql
//! lineagex compare  queries.sql [--ddl schema.sql]
//! ```
//!
//! `extract --jobs N` (N > 1) routes through `lineagex-engine`'s parallel
//! batch scheduler; `session` is the incremental REPL over the same
//! engine — SQL statements stream in over stdin, `\`-commands (`\impact`,
//! `\lineage`, `\stats`, ...) answer lineage questions between ingests.
//! `serve` exposes the same engine as a long-lived JSON-lines TCP
//! service (`lineagex-serve`), and `client` scripts one request against
//! it, printing the server's raw response line.
//!
//! The command logic lives in this library (driven by string arguments
//! and an output writer) so it is fully unit-testable; `main.rs` is a
//! thin wrapper.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod args;
pub mod commands;

use std::io::Write;

/// Entry point shared by `main` and the tests. Returns the process exit
/// code.
pub fn run(argv: &[String], out: &mut dyn Write) -> i32 {
    match args::Command::parse(argv) {
        Ok(command) => match commands::execute(&command, out) {
            Ok(()) => 0,
            Err(message) => {
                let _ = writeln!(out, "error: {message}");
                1
            }
        },
        Err(message) => {
            let _ = writeln!(out, "error: {message}");
            let _ = writeln!(out, "{}", args::USAGE);
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> (i32, String) {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, text) = run_to_string(&[]);
        assert_eq!(code, 2);
        assert!(text.contains("usage"), "{text}");
    }

    #[test]
    fn unknown_subcommand_fails() {
        let (code, text) = run_to_string(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(text.contains("unknown command"), "{text}");
    }

    #[test]
    fn missing_file_reports_io_error() {
        let (code, text) = run_to_string(&["extract", "/definitely/not/here.sql"]);
        assert_eq!(code, 1);
        assert!(text.contains("error"), "{text}");
    }
}
