//! The `lineagex` binary — see [`lineagex_cli`] for the command surface.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    std::process::exit(lineagex_cli::run(&argv, &mut stdout));
}
