//! Command execution.

use crate::args::{parse_column, ClientOp, Command, CommonOptions, QueryFormat};
use lineagex_baseline::metrics::{graph_contribute_edges, score_edges};
use lineagex_baseline::SqlLineageLike;
use lineagex_catalog::{Catalog, SimulatedDatabase};
use lineagex_core::{
    path_between, Diagnostic, DialectKind, EdgeKind, ExtractOptions, LineageResult, LineageView,
    LineageX, QueryReport, SourceColumn,
};
use lineagex_engine::{Engine, EngineOptions};
use lineagex_serve::proto::{QueryParams, Request, PROTOCOL_VERSION};
use lineagex_serve::{Client, ServeOptions, Server};
use lineagex_viz::{
    subgraph_to_dot, subgraph_to_mermaid, to_dot, to_html, to_mermaid, to_output_json,
    to_report_v2_json,
};
use std::io::{BufRead, Write};

type CmdResult = Result<(), String>;

/// Execute a parsed command, writing human-readable output to `out`.
pub fn execute(command: &Command, out: &mut dyn Write) -> CmdResult {
    match command {
        Command::Extract {
            file,
            json,
            json_v1,
            dot,
            html,
            mermaid,
            diagnostics_json,
            timings,
            save_snapshot,
            common,
        } => {
            let started = std::time::Instant::now();
            // --save-snapshot needs the live session after settling, so
            // it forces the engine path even at jobs = 1; the engine
            // shim keeps one-shot log semantics, so results match.
            let sql = read_file(file)?;
            let (result, mut engine) = if save_snapshot.is_some() {
                let (engine, result) = run_engine_extraction(&sql, common)?;
                (result, Some(engine))
            } else {
                (run_extraction_sql(&sql, common)?, None)
            };
            if *timings {
                // Stderr so piped stdout artifacts stay clean.
                eprintln!(
                    "{}",
                    timings_summary(started.elapsed(), &lineagex_obs::registry().snapshot())
                );
            }
            summarize(&result, file, &sql, out)?;
            if let Some(path) = diagnostics_json {
                let diagnostics: Vec<Diagnostic> = collect_diagnostics(&result)
                    .into_iter()
                    .map(|d| d.with_excerpt_from(&sql))
                    .collect();
                let rendered =
                    serde_json::to_string_pretty(&diagnostics).map_err(|e| e.to_string())?;
                write_file(path, &(rendered + "\n"))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = json {
                // The versioned v2 document: graph + per-query lineage +
                // run diagnostics + stats, deterministic across backends.
                write_file(path, &to_report_v2_json(&result.graph, &result.diagnostics))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = json_v1 {
                write_file(path, &to_output_json(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = dot {
                write_file(path, &to_dot(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = html {
                write_file(path, &to_html(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = mermaid {
                write_file(path, &to_mermaid(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = save_snapshot {
                let engine = engine.as_mut().expect("snapshot runs use the engine path");
                engine
                    .save_snapshot(std::path::Path::new(path))
                    .map_err(|e| format!("cannot write snapshot {path}: {e}"))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if common.trace {
                for (id, trace) in &result.traces {
                    wln(out, &format!("\ntrace of {id}:\n{trace}"))?;
                }
            }
            Ok(())
        }
        Command::Query {
            origins,
            file,
            upstream,
            depth,
            edge_kinds,
            table_level,
            to,
            format,
            common,
        } => {
            let (mut result, sql) = run_extraction(file, common)?;
            // One front door: the CLI speaks GraphQuery over the
            // LineageView trait, like any other application.
            let mut query = result.query();
            for origin in origins {
                query = query.from(origin);
            }
            query = if *upstream { query.upstream() } else { query.downstream() };
            if let Some(depth) = depth {
                query = query.max_depth(*depth);
            }
            for kind in edge_kinds {
                query = query.edge_kind(match kind.as_str() {
                    "contribute" => EdgeKind::Contribute,
                    "reference" => EdgeKind::Reference,
                    _ => EdgeKind::Both,
                });
            }
            if *table_level {
                query = query.table_level();
            }
            if let Some((table, column)) = to {
                query = query.to(table, column);
            }
            let answer = query.run().map_err(|e| e.to_string())?;
            // A lenient run's degraded lineage must never present the
            // cone as authoritative: partial relations and run
            // diagnostics travel with every format that can carry them.
            let partial: Vec<&str> = answer
                .relations
                .iter()
                .filter(|r| result.graph.queries.get(&r.name).is_some_and(|q| q.partial))
                .map(|r| r.name.as_str())
                .collect();
            match format {
                QueryFormat::Json => wln(
                    out,
                    &QueryReport::from_answer(&answer)
                        .with_context(&result.graph, &result.diagnostics)
                        .to_json(),
                ),
                QueryFormat::JsonV1 => wln(out, &to_output_json(&result.graph)),
                QueryFormat::Dot => wln(out, &subgraph_to_dot(&answer.subgraph)),
                QueryFormat::Mermaid => wln(out, &subgraph_to_mermaid(&answer.subgraph)),
                QueryFormat::Text => {
                    let origins: Vec<String> = answer
                        .origins
                        .iter()
                        .map(|o| if o.column.is_empty() { o.table.clone() } else { o.to_string() })
                        .collect();
                    wln(
                        out,
                        &format!(
                            "{} of {}: {} column(s), {} relation(s)",
                            answer.direction.as_str(),
                            origins.join(", "),
                            answer.columns.len(),
                            answer.relations.len(),
                        ),
                    )?;
                    for m in &answer.columns {
                        wln(out, &format!("  {} ({:?}, {} hop(s))", m.column, m.kind, m.distance))?;
                    }
                    if *table_level {
                        for r in &answer.relations {
                            wln(out, &format!("  {} ({} hop(s))", r.name, r.distance))?;
                        }
                    }
                    match (&answer.path, to) {
                        (Some(path), _) => {
                            wln(out, "shortest path:")?;
                            for step in path {
                                wln(out, &format!("  -> {} ({:?})", step.column, step.kind))?;
                            }
                        }
                        (None, Some((table, column))) => {
                            wln(out, &format!("target {table}.{column} is not reachable"))?;
                        }
                        (None, None) => {}
                    }
                    if !partial.is_empty() {
                        wln(out, &format!("partial lineage   : {partial:?}"))?;
                    }
                    let diagnostics = collect_diagnostics(&result);
                    if !diagnostics.is_empty() {
                        wln(out, &format!("diagnostics       : {}", diagnostics.len()))?;
                        for diagnostic in &diagnostics {
                            wln(out, &diagnostic.render(file, &sql))?;
                        }
                    }
                    Ok(())
                }
            }
        }
        Command::Impact { column, file, common } => {
            let (result, _) = run_extraction(file, common)?;
            let origin = SourceColumn::new(&column.0, &column.1);
            if !result.graph.has_column(&origin) {
                return Err(format!("column {origin} does not exist in the lineage graph"));
            }
            let report = lineagex_core::impact_of(&result.graph, &origin);
            wln(out, &format!("impact of {origin}: {} column(s)", report.impacted().len()))?;
            for (table, cols) in report.by_table() {
                let rendered: Vec<String> = cols
                    .iter()
                    .map(|c| format!("{} ({:?}, {} hop(s))", c.column.column, c.kind, c.distance))
                    .collect();
                wln(out, &format!("  {table}: {}", rendered.join(", ")))?;
            }
            Ok(())
        }
        Command::Path { from, to, file, common } => {
            let (result, _) = run_extraction(file, common)?;
            let from = SourceColumn::new(&from.0, &from.1);
            let to = SourceColumn::new(&to.0, &to.1);
            match path_between(&result.graph, &from, &to) {
                Some(path) => {
                    wln(out, &format!("{from}"))?;
                    for (col, kind) in path {
                        wln(out, &format!("  -> {col} ({kind:?})"))?;
                    }
                    Ok(())
                }
                None => Err(format!("{to} is not downstream of {from}")),
            }
        }
        Command::Explain { file, common } => {
            let sql = read_file(file)?;
            let ddl = read_file(common.ddl.as_ref().expect("validated by parser"))?;
            let catalog = Catalog::from_ddl(&ddl).map_err(|e| e.to_string())?;
            let db = SimulatedDatabase::with_catalog(catalog);
            let statements = lineagex_sqlparse::parse_sql(&sql).map_err(|e| e.to_string())?;
            let mut db = db;
            for stmt in &statements {
                if stmt.defining_query().is_none() && stmt.update_as_query().is_none() {
                    continue;
                }
                wln(out, &format!("-- {stmt}"))?;
                let bound = db.explain(&stmt.to_string()).map_err(|e| e.to_string())?;
                wln(out, &bound.plan.to_string())?;
                // Create views so later statements can reference them.
                db.execute_statement(stmt).map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Session { common } => {
            let stdin = std::io::stdin();
            run_session(&mut stdin.lock(), out, common)
        }
        Command::Serve { addr, verbose, slow_ms, load_snapshot, common } => {
            let options = ServeOptions {
                engine: engine_options(common),
                catalog: load_catalog(common)?,
                verbose: *verbose,
                slow_ms: slow_ms.unwrap_or(lineagex_serve::DEFAULT_SLOW_MS),
                snapshot_path: load_snapshot.as_ref().map(std::path::PathBuf::from),
                dialect_pinned: common.dialect.is_some(),
            };
            let server =
                Server::start(addr, options).map_err(|e| format!("cannot serve on {addr}: {e}"))?;
            wln(
                out,
                &format!(
                    "lineagex serving on {} (protocol schema_version {PROTOCOL_VERSION})",
                    server.local_addr()
                ),
            )?;
            wln(out, "stop with: lineagex client <addr> shutdown")?;
            out.flush().map_err(|e| e.to_string())?;
            server.wait();
            wln(out, "server stopped")
        }
        Command::Client { addr, op, pretty } => {
            let mut client =
                Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let request = match op {
                ClientOp::Ping => Request::Ping,
                ClientOp::Report => Request::Report,
                ClientOp::Stats => Request::Stats,
                ClientOp::Diagnostics => Request::Diagnostics,
                ClientOp::Refresh => Request::Refresh,
                ClientOp::Metrics => Request::Metrics,
                ClientOp::Shutdown => Request::Shutdown,
                ClientOp::Ingest { file, dialect } => {
                    // SQL written for one grammar must not be fed to a
                    // session pinned to another: check before sending.
                    if let Some(expected) = dialect {
                        let server = client.server_dialect().map_err(|e| e.to_string())?;
                        if server != expected.name() {
                            return Err(format!(
                                "server session speaks dialect {server:?} but the script was \
                                 written for {:?}; restart the server with --dialect {} or drop \
                                 the client-side check",
                                expected.name(),
                                expected.name()
                            ));
                        }
                    }
                    Request::Ingest { sql: read_file(file)? }
                }
                ClientOp::Drop { names } => Request::Drop { names: names.clone() },
                ClientOp::Query { origins, upstream, depth, edge_kind, table_level, to } => {
                    Request::Query(QueryParams {
                        origins: origins.clone(),
                        upstream: *upstream,
                        depth: *depth,
                        edge_kind: edge_kind.as_deref().map(|kind| match kind {
                            "contribute" => EdgeKind::Contribute,
                            "reference" => EdgeKind::Reference,
                            _ => EdgeKind::Both,
                        }),
                        table_level: *table_level,
                        to: to.as_ref().map(|(table, column)| format!("{table}.{column}")),
                    })
                }
            };
            let reply = client.request(&request).map_err(|e| e.to_string())?;
            if *pretty {
                wln(out, &serde_json::to_string_pretty(&reply.value).map_err(|e| e.to_string())?)?;
            } else {
                wln(out, &reply.line)?;
            }
            if reply.ok() {
                Ok(())
            } else {
                Err(format!(
                    "server rejected the request ({})",
                    reply.error_code().unwrap_or_else(|| "unknown error".into())
                ))
            }
        }
        Command::Compare { file, common } => {
            let sql = read_file(file)?;
            let ours = run_extraction_sql(&sql, common)?;
            let ours_edges = graph_contribute_edges(&ours.graph);
            let baseline = SqlLineageLike::new().extract(&sql).map_err(|e| e.to_string())?;
            let base_edges = graph_contribute_edges(&baseline);
            // Without independent ground truth, report mutual agreement:
            // edges only we find, only the baseline finds, and shared.
            let shared = ours_edges.intersection(&base_edges).count();
            wln(out, "contribute-edge comparison (LineageX vs SQLLineage-like):")?;
            wln(out, &format!("  LineageX edges : {}", ours_edges.len()))?;
            wln(out, &format!("  baseline edges : {}", base_edges.len()))?;
            wln(out, &format!("  shared         : {shared}"))?;
            let agreement = score_edges(&base_edges, &ours_edges);
            wln(
                out,
                &format!(
                    "  baseline vs LineageX-as-reference: precision {:.1}% recall {:.1}%",
                    100.0 * agreement.precision(),
                    100.0 * agreement.recall()
                ),
            )?;
            for edge in ours_edges.difference(&base_edges).take(10) {
                wln(out, &format!("  only LineageX: {} -> {}", edge.0, edge.1))?;
            }
            for edge in base_edges.difference(&ours_edges).take(10) {
                wln(out, &format!("  only baseline: {} -> {}", edge.0, edge.1))?;
            }
            Ok(())
        }
    }
}

fn run_extraction(file: &str, common: &CommonOptions) -> Result<(LineageResult, String), String> {
    let sql = read_file(file)?;
    let result = run_extraction_sql(&sql, common)?;
    Ok((result, sql))
}

/// All of a run's diagnostics in reading order: run-level first (parse
/// errors, skips, duplicates), then per-query extraction diagnostics in
/// processing order.
fn collect_diagnostics(result: &LineageResult) -> Vec<Diagnostic> {
    let mut out = result.diagnostics.clone();
    for id in &result.graph.order {
        if let Some(q) = result.graph.queries.get(id) {
            out.extend(q.diagnostics.iter().cloned());
        }
    }
    out
}

fn run_extraction_sql(sql: &str, common: &CommonOptions) -> Result<LineageResult, String> {
    // --jobs N (N > 1) routes through the incremental engine's parallel
    // batch scheduler, shimmed to keep one-shot log semantics so the flag
    // never changes results: a DROP in the file is skipped with a warning
    // (a session would retract) and a duplicate id is an error (a session
    // would redefine).
    if common.jobs > 1 {
        return run_engine_extraction(sql, common).map(|(_, result)| result);
    }
    let mut builder = LineageX::new().ambiguity(common.ambiguity);
    if let Some(dialect) = common.dialect {
        builder = builder.dialect(dialect);
    }
    if let Some(ddl_path) = &common.ddl {
        let ddl = read_file(ddl_path)?;
        builder = builder.with_ddl(&ddl).map_err(|e| e.to_string())?;
    }
    if common.trace {
        builder = builder.trace();
    }
    if common.no_auto_inference {
        builder = builder.without_auto_inference();
    }
    if common.lenient {
        builder = builder.lenient();
    }
    builder.run(sql).map_err(|e| e.to_string())
}

/// Run a one-shot log through the incremental engine and settle it,
/// returning the live session alongside the result so callers can
/// persist it (`--save-snapshot`).
fn run_engine_extraction(
    sql: &str,
    common: &CommonOptions,
) -> Result<(Engine, LineageResult), String> {
    let mut engine = build_engine(common)?;
    // The shim parses the whole file once, so statement spans — and
    // therefore every diagnostic the engine attaches — stay relative
    // to the original file, exactly like the sequential path.
    let mut diagnostics = Vec::new();
    let dialect = common.dialect.unwrap_or(DialectKind::Ansi);
    let statements = if common.lenient {
        let script = lineagex_sqlparse::parse_statements_recovering_with(sql, dialect);
        diagnostics.extend(script.errors.iter().map(|e| {
            Diagnostic::new(lineagex_core::DiagnosticCode::ParseError, e.message.clone())
                .with_span(e.span)
                .with_excerpt_from(sql)
        }));
        script.statements
    } else {
        lineagex_sqlparse::parse_sql_spanned_with(sql, dialect).map_err(|e| e.to_string())?
    };
    for stmt in statements {
        if let lineagex_sqlparse::ast::Statement::Drop { ref names, .. } = stmt.statement {
            let what: Vec<String> = names.iter().map(|n| n.base_name().to_string()).collect();
            diagnostics.push(
                Diagnostic::new(
                    lineagex_core::DiagnosticCode::SkippedStatement,
                    format!("skipped DROP {}", what.join(", ")),
                )
                .with_span(stmt.span),
            );
            continue;
        }
        for receipt in engine.ingest_parsed(vec![stmt], sql) {
            let redefined = matches!(
                receipt.action,
                lineagex_engine::IngestAction::Redefined | lineagex_engine::IngestAction::Unchanged
            );
            if redefined && !common.lenient {
                return Err(format!("duplicate query id {:?}", receipt.target));
            }
            // Receipts carry noise/skip/duplicate diagnostics in
            // statement order, matching the batch dictionary's.
            diagnostics.extend(receipt.diagnostics.iter().cloned());
            if receipt.action == lineagex_engine::IngestAction::Unchanged {
                // A byte-identical duplicate is a no-op to the
                // session but still a duplicate in a one-shot log.
                diagnostics.push(
                    Diagnostic::new(
                        lineagex_core::DiagnosticCode::DuplicateQueryId,
                        format!(
                            "duplicate query identifier {:?}: last definition wins",
                            receipt.target
                        ),
                    )
                    .for_statement(&receipt.target),
                );
            }
        }
    }
    let mut result = engine.result().map_err(|e| e.to_string())?;
    // The shim assembled the same findings in log order (parse
    // errors first, then per-statement events); use that ordering.
    result.diagnostics = diagnostics;
    Ok((engine, result))
}

fn engine_options(common: &CommonOptions) -> EngineOptions {
    let mut extract = ExtractOptions::new().with_ambiguity(common.ambiguity);
    if let Some(dialect) = common.dialect {
        extract = extract.with_dialect(dialect);
    }
    if common.trace {
        extract = extract.with_trace();
    }
    if common.no_auto_inference {
        extract = extract.without_auto_inference();
    }
    if common.lenient {
        extract = extract.with_lenient();
    }
    EngineOptions { jobs: common.jobs.max(1), extract, ..EngineOptions::default() }
}

fn load_catalog(common: &CommonOptions) -> Result<Option<Catalog>, String> {
    match &common.ddl {
        None => Ok(None),
        Some(ddl_path) => {
            let ddl = read_file(ddl_path)?;
            Ok(Some(Catalog::from_ddl(&ddl).map_err(|e| e.to_string())?))
        }
    }
}

fn build_engine(common: &CommonOptions) -> Result<Engine, String> {
    let mut engine = Engine::with_options(engine_options(common));
    if let Some(catalog) = load_catalog(common)? {
        engine = engine.with_catalog(catalog);
    }
    Ok(engine)
}

/// The interactive session loop: SQL statements (terminated by `;`) are
/// ingested into a long-lived [`Engine`]; lines starting with `\` are
/// meta commands answered from the current graph. Ingest and extraction
/// errors are reported but never end the session.
pub fn run_session(
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    common: &CommonOptions,
) -> CmdResult {
    let mut engine = build_engine(common)?;
    wln(out, "lineagex session — statements end with ';', meta commands with \\ (try \\help)")?;
    let mut buffer = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break;
        }
        let trimmed = line.trim();
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            if !session_meta(&mut engine, trimmed, out)? {
                return Ok(());
            }
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            session_ingest(&mut engine, &buffer, out)?;
            buffer.clear();
        }
    }
    if !buffer.trim().is_empty() {
        session_ingest(&mut engine, &buffer, out)?;
    }
    Ok(())
}

/// Ingest one buffered script, reporting receipts (with their rendered
/// diagnostics) and re-extraction work.
fn session_ingest(engine: &mut Engine, sql: &str, out: &mut dyn Write) -> CmdResult {
    match engine.ingest(sql) {
        Err(error) => wln(out, &format!("error: {error}")),
        Ok(receipts) => {
            // Receipt diagnostics carry spans into the trimmed ingest
            // buffer; render them against it caret-style.
            let source = sql.trim();
            for receipt in &receipts {
                wln(out, &format!("  {receipt}"))?;
                for diagnostic in &receipt.diagnostics {
                    for line in diagnostic.render("stdin", source).lines() {
                        wln(out, &format!("    {line}"))?;
                    }
                }
            }
            match engine.refresh() {
                Ok(0) => Ok(()),
                Ok(n) => {
                    wln(out, &format!("  re-extracted {n} quer{}", plural_y(n)))?;
                    // Surface only the *fresh* extraction diagnostics —
                    // what this refresh (re-)extracted — not the whole
                    // session's accumulated history.
                    let fresh = engine.last_refresh_ids().to_vec();
                    let graph = engine.graph().map_err(|e| e.to_string())?;
                    let mut rendered = Vec::new();
                    for id in &fresh {
                        if let Some(q) = graph.queries.get(id) {
                            for diagnostic in &q.diagnostics {
                                rendered.push(diagnostic.to_string());
                            }
                        }
                    }
                    for line in rendered {
                        wln(out, &format!("    {line}"))?;
                    }
                    Ok(())
                }
                Err(error) => wln(out, &format!("error: {error} (entry stays pending)")),
            }
        }
    }
}

/// Execute one `\` meta command; returns `false` on `\q`.
fn session_meta(engine: &mut Engine, command: &str, out: &mut dyn Write) -> Result<bool, String> {
    let mut parts = command.split_whitespace();
    let head = parts.next().unwrap_or(command);
    let arg = parts.next();
    match (head, arg) {
        ("\\q", _) | ("\\quit", _) => return Ok(false),
        ("\\help", _) => {
            wln(out, "  \\graph            summary of the settled lineage graph")?;
            wln(out, "  \\tables           relations with their columns")?;
            wln(out, "  \\lineage t.c      full lineage of one output column")?;
            wln(out, "  \\impact t.c       transitive downstream impact of one column")?;
            wln(out, "  \\stats            session counters")?;
            wln(out, "  \\q                quit")?;
        }
        ("\\stats", _) => {
            let stats = engine.stats().clone();
            wln(out, &format!("  statements ingested : {}", stats.statements))?;
            wln(
                out,
                &format!(
                    "  diagnostics         : {} live, {} parse failure(s)",
                    stats.diagnostics, stats.parse_failures
                ),
            )?;
            wln(
                out,
                &format!(
                    "  entries             : {} defined, {} redefined, {} unchanged, {} dropped",
                    stats.defined, stats.redefinitions, stats.unchanged, stats.drops
                ),
            )?;
            wln(
                out,
                &format!(
                    "  extractions         : {} total, {} in last refresh",
                    stats.extractions, stats.last_refresh_extractions
                ),
            )?;
            wln(
                out,
                &format!(
                    "  ast cache           : {} hits, {} misses",
                    stats.parse_cache_hits, stats.parse_cache_misses
                ),
            )?;
        }
        ("\\graph", _) => match engine.graph() {
            Ok(graph) => {
                wln(out, &format!("  relations : {}", graph.nodes.len()))?;
                wln(out, &format!("  queries   : {}", graph.queries.len()))?;
                wln(out, &format!("  columns   : {}", graph.column_count()))?;
                wln(out, &format!("  edges     : {}", graph.all_edges().len()))?;
            }
            Err(error) => wln(out, &format!("error: {error}"))?,
        },
        ("\\tables", _) => match engine.graph() {
            Ok(graph) => {
                for node in graph.nodes.values() {
                    wln(
                        out,
                        &format!("  {} ({:?}): {}", node.name, node.kind, node.columns.join(", ")),
                    )?;
                }
            }
            Err(error) => wln(out, &format!("error: {error}"))?,
        },
        ("\\lineage", Some(spec)) => {
            let (table, column) = parse_column(spec)?;
            match engine.lineage_of(&table, &column) {
                Ok(Some(sources)) => {
                    let rendered: Vec<String> = sources.iter().map(|s| s.to_string()).collect();
                    wln(out, &format!("  {table}.{column} <- {}", rendered.join(", ")))?;
                }
                Ok(None) => wln(out, &format!("  no lineage recorded for {table}.{column}"))?,
                Err(error) => wln(out, &format!("error: {error}"))?,
            }
        }
        ("\\impact", Some(spec)) => {
            let (table, column) = parse_column(spec)?;
            match engine.impact_of(&table, &column) {
                Ok(report) => {
                    wln(
                        out,
                        &format!(
                            "  impact of {table}.{column}: {} column(s)",
                            report.impacted().len()
                        ),
                    )?;
                    for (table, cols) in report.by_table() {
                        let rendered: Vec<String> =
                            cols.iter().map(|c| c.column.column.clone()).collect();
                        wln(out, &format!("    {table}: {}", rendered.join(", ")))?;
                    }
                }
                Err(error) => wln(out, &format!("error: {error}"))?,
            }
        }
        _ => wln(out, &format!("  unknown command {command:?} (try \\help)"))?,
    }
    Ok(true)
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

fn summarize(result: &LineageResult, file: &str, sql: &str, out: &mut dyn Write) -> CmdResult {
    wln(out, &format!("queries processed : {}", result.graph.queries.len()))?;
    wln(out, &format!("processing order  : {:?}", result.graph.order))?;
    if !result.deferrals.is_empty() {
        wln(out, &format!("stack deferrals   : {:?}", result.deferrals))?;
    }
    wln(out, &format!("relations in graph: {}", result.graph.nodes.len()))?;
    wln(out, &format!("column nodes      : {}", result.graph.column_count()))?;
    wln(out, &format!("column edges      : {}", result.graph.all_edges().len()))?;
    let partial: Vec<&str> = result
        .graph
        .order
        .iter()
        .filter(|id| result.graph.queries.get(*id).is_some_and(|q| q.partial))
        .map(String::as_str)
        .collect();
    if !partial.is_empty() {
        wln(out, &format!("partial lineage   : {partial:?}"))?;
    }
    let diagnostics = collect_diagnostics(result);
    wln(out, &format!("diagnostics       : {}", diagnostics.len()))?;
    for diagnostic in &diagnostics {
        wln(out, &diagnostic.render(file, sql))?;
    }
    Ok(())
}

/// The `extract --timings` stderr summary: total wall time plus every
/// engine/query histogram that actually recorded something. The batch
/// path (jobs = 1) never touches the engine, so a sequential run prints
/// just the wall-time line — the histograms light up under `--jobs N`.
fn timings_summary(total: std::time::Duration, snapshot: &lineagex_obs::MetricsSnapshot) -> String {
    let mut out = format!("[timings] total: {:.1} ms", total.as_secs_f64() * 1e3);
    for (name, h) in &snapshot.histograms {
        let relevant = name.starts_with("engine.") || name.starts_with("query.");
        if !relevant || h.count == 0 {
            continue;
        }
        let unit = if name.ends_with("_us") { "us" } else { "" };
        out.push_str(&format!(
            "\n[timings] {name}: count={} p50={}{unit} p99={}{unit} max={}{unit}",
            h.count, h.p50, h.p99, h.max
        ));
    }
    out
}

fn wln(out: &mut dyn Write, line: &str) -> CmdResult {
    writeln!(out, "{line}").map_err(|e| e.to_string())
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, content: &str) -> CmdResult {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("lineagex_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const LOG: &str = "
        CREATE TABLE web (cid int, page text, reg boolean);
        CREATE VIEW v AS SELECT page AS p FROM web WHERE reg;
    ";

    fn execute_to_string(command: &Command) -> (CmdResult, String) {
        let mut out = Vec::new();
        let result = execute(command, &mut out);
        (result, String::from_utf8(out).unwrap())
    }

    #[test]
    fn extract_summarizes() {
        let file = write_temp("extract.sql", LOG);
        let cmd = Command::parse(&["extract".to_string(), file]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("queries processed : 1"), "{text}");
        assert!(text.contains("column edges"), "{text}");
    }

    #[test]
    fn extract_writes_artifacts() {
        let file = write_temp("artifacts.sql", LOG);
        let json = write_temp("artifacts.json", "");
        let cmd =
            Command::parse(&["extract".to_string(), file, "--json".to_string(), json.clone()])
                .unwrap();
        execute_to_string(&cmd).0.unwrap();
        let written = std::fs::read_to_string(&json).unwrap();
        assert!(written.contains("\"queries\""));
    }

    const CHAIN: &str = "
        CREATE TABLE web (cid int, page text, reg boolean);
        CREATE VIEW v AS SELECT page AS p FROM web WHERE reg;
        CREATE VIEW w AS SELECT p AS q FROM v;
    ";

    #[test]
    fn query_text_reports_cone() {
        let file = write_temp("query.sql", CHAIN);
        let cmd =
            Command::parse(&["query".to_string(), "web.page".to_string(), file.clone()]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("downstream of web.page: 2 column(s)"), "{text}");
        assert!(text.contains("v.p (Contribute, 1 hop(s))"), "{text}");
        assert!(text.contains("w.q (Contribute, 2 hop(s))"), "{text}");
        // Depth limit cuts the cone; upstream walks the other way.
        let cmd = Command::parse(&[
            "query".to_string(),
            "web.page".to_string(),
            file.clone(),
            "--depth".to_string(),
            "1".to_string(),
        ])
        .unwrap();
        let (_, text) = execute_to_string(&cmd);
        assert!(text.contains("1 column(s)"), "{text}");
        let cmd = Command::parse(&[
            "query".to_string(),
            "w.q".to_string(),
            file,
            "--direction".to_string(),
            "up".to_string(),
        ])
        .unwrap();
        let (_, text) = execute_to_string(&cmd);
        assert!(text.contains("upstream of w.q"), "{text}");
        assert!(text.contains("web.page"), "{text}");
    }

    #[test]
    fn query_formats_render_the_cone() {
        let file = write_temp("query_fmt.sql", CHAIN);
        let json = |args: &[&str]| {
            let mut argv = vec!["query".to_string(), "web.page".to_string(), file.clone()];
            argv.extend(args.iter().map(|s| s.to_string()));
            execute_to_string(&Command::parse(&argv).unwrap())
        };
        let (result, text) = json(&["--format", "json"]);
        result.unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["schema_version"], 2);
        assert_eq!(value["direction"], "downstream");
        assert_eq!(value["columns"][0]["column"], "v.p");
        let (_, dot) = json(&["--format", "dot"]);
        assert!(dot.contains("digraph lineage"), "{dot}");
        assert!(!dot.contains("cid"), "the cone excludes untouched columns: {dot}");
        let (_, mmd) = json(&["--format", "mermaid"]);
        assert!(mmd.contains("flowchart LR"), "{mmd}");
        let (_, v1) = json(&["--format", "json-v1"]);
        let value: serde_json::Value = serde_json::from_str(&v1).unwrap();
        assert!(value["processing_order"].is_array(), "{v1}");
    }

    #[test]
    fn query_path_and_table_level() {
        let file = write_temp("query_path.sql", CHAIN);
        let cmd = Command::parse(&[
            "query".to_string(),
            "web.page".to_string(),
            file.clone(),
            "--to".to_string(),
            "w.q".to_string(),
        ])
        .unwrap();
        let (_, text) = execute_to_string(&cmd);
        assert!(text.contains("shortest path:"), "{text}");
        assert!(text.contains("-> w.q (Contribute)"), "{text}");
        let cmd = Command::parse(&[
            "query".to_string(),
            "web".to_string(),
            file,
            "--table-level".to_string(),
        ])
        .unwrap();
        let (_, text) = execute_to_string(&cmd);
        assert!(text.contains("web (0 hop(s))"), "{text}");
        assert!(text.contains("w (2 hop(s))"), "{text}");
    }

    #[test]
    fn lenient_query_surfaces_diagnostics_and_partial_lineage() {
        let file = write_temp("query_lenient.sql", messy_log());
        let cmd = Command::parse(&[
            "query".to_string(),
            "web.page".to_string(),
            file.clone(),
            "--lenient".to_string(),
        ])
        .unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        // The messy log's parse error and duplicate id must be visible,
        // not silently dropped behind a confident-looking cone.
        assert!(text.contains("diagnostics       :"), "{text}");
        assert!(text.contains("parse-error"), "{text}");
        // And the JSON envelope embeds the same context.
        let cmd = Command::parse(&[
            "query".to_string(),
            "web.page".to_string(),
            file,
            "--lenient".to_string(),
            "--format".to_string(),
            "json".to_string(),
        ])
        .unwrap();
        let (result, json) = execute_to_string(&cmd);
        result.unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(!value["diagnostics"].as_array().unwrap().is_empty(), "{json}");
        assert!(value["partial_relations"].is_array(), "{json}");
    }

    #[test]
    fn query_json_is_byte_identical_across_jobs_and_backends() {
        // The acceptance gate: schema_version-2 documents from the batch
        // path (jobs=1) and the incremental engine path (jobs>1) are
        // byte-identical.
        let file = write_temp("query_jobs.sql", CHAIN);
        let run = |extra: &[&str]| {
            let mut argv = vec![
                "query".to_string(),
                "web.page".to_string(),
                file.clone(),
                "--format".to_string(),
                "json".to_string(),
            ];
            argv.extend(extra.iter().map(|s| s.to_string()));
            let (result, text) = execute_to_string(&Command::parse(&argv).unwrap());
            result.unwrap();
            text
        };
        let sequential = run(&[]);
        let parallel = run(&["--jobs", "4"]);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn extract_json_v2_is_byte_identical_across_jobs() {
        let file = write_temp("extract_v2_jobs.sql", CHAIN);
        let run = |name: &str, extra: &[&str]| {
            let json = write_temp(name, "");
            let mut argv =
                vec!["extract".to_string(), file.clone(), "--json".to_string(), json.clone()];
            argv.extend(extra.iter().map(|s| s.to_string()));
            execute_to_string(&Command::parse(&argv).unwrap()).0.unwrap();
            std::fs::read_to_string(&json).unwrap()
        };
        let sequential = run("v2_seq.json", &[]);
        let parallel = run("v2_par.json", &["--jobs", "4"]);
        assert_eq!(sequential, parallel);
        let value: serde_json::Value = serde_json::from_str(&sequential).unwrap();
        assert_eq!(value["schema_version"], 2);
        assert_eq!(value["stats"]["queries"], 2);
    }

    #[test]
    fn extract_writes_v1_artifact_behind_json_v1() {
        let file = write_temp("extract_v1.sql", LOG);
        let v1 = write_temp("extract_v1.json", "");
        let cmd =
            Command::parse(&["extract".to_string(), file, "--json-v1".to_string(), v1.clone()])
                .unwrap();
        execute_to_string(&cmd).0.unwrap();
        let written = std::fs::read_to_string(&v1).unwrap();
        let value: serde_json::Value = serde_json::from_str(&written).unwrap();
        assert!(value["schema_version"].is_null(), "v1 has no version field");
        assert!(value["processing_order"].is_array());
    }

    #[test]
    fn impact_reports_downstream() {
        let file = write_temp("impact.sql", LOG);
        let cmd = Command::parse(&["impact".to_string(), "web.page".to_string(), file]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("v: p"), "{text}");
    }

    #[test]
    fn impact_unknown_column_errors() {
        let file = write_temp("impact_bad.sql", LOG);
        let cmd = Command::parse(&["impact".to_string(), "web.ghost".to_string(), file]).unwrap();
        let (result, _) = execute_to_string(&cmd);
        assert!(result.is_err());
    }

    #[test]
    fn path_prints_hops() {
        let file = write_temp("path.sql", LOG);
        let cmd =
            Command::parse(&["path".to_string(), "web.page".to_string(), "v.p".to_string(), file])
                .unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("-> v.p"), "{text}");
    }

    #[test]
    fn explain_prints_plans() {
        let ddl = write_temp("schema.sql", "CREATE TABLE web (cid int, page text);");
        let queries = write_temp("explain.sql", "CREATE VIEW v AS SELECT page FROM web;");
        let cmd =
            Command::parse(&["explain".to_string(), queries, "--ddl".to_string(), ddl]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("Seq Scan on web"), "{text}");
    }

    #[test]
    fn compare_reports_edge_sets() {
        let file = write_temp("compare.sql", LOG);
        let cmd = Command::parse(&["compare".to_string(), file]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("LineageX edges"), "{text}");
    }

    #[test]
    fn extract_with_jobs_matches_sequential() {
        let file = write_temp("jobs.sql", LOG);
        let sequential = Command::parse(&["extract".to_string(), file.clone()]).unwrap();
        let parallel =
            Command::parse(&["extract".to_string(), file, "--jobs".to_string(), "4".to_string()])
                .unwrap();
        let (seq_result, seq_text) = execute_to_string(&sequential);
        let (par_result, par_text) = execute_to_string(&parallel);
        seq_result.unwrap();
        par_result.unwrap();
        // Identical summary apart from the processing-order line (the
        // scheduler's topological order vs the one-shot deferral order).
        let strip = |text: &str| -> Vec<String> {
            text.lines().filter(|l| !l.contains("processing order")).map(String::from).collect()
        };
        assert_eq!(strip(&seq_text), strip(&par_text));
    }

    #[test]
    fn extract_with_jobs_keeps_one_shot_log_semantics() {
        // A DROP in the file is skipped with a warning in both modes.
        let file = write_temp("jobs_drop.sql", &format!("{LOG}\nDROP VIEW v;"));
        let sequential = Command::parse(&["extract".to_string(), file.clone()]).unwrap();
        let parallel =
            Command::parse(&["extract".to_string(), file, "--jobs".to_string(), "2".to_string()])
                .unwrap();
        let (seq_result, seq_text) = execute_to_string(&sequential);
        let (par_result, par_text) = execute_to_string(&parallel);
        seq_result.unwrap();
        par_result.unwrap();
        assert!(seq_text.contains("queries processed : 1"), "{seq_text}");
        assert!(par_text.contains("queries processed : 1"), "{par_text}");
        assert!(seq_text.contains("diagnostics       : 1"), "{seq_text}");
        assert!(par_text.contains("diagnostics       : 1"), "{par_text}");
        // A duplicate query id errors in both modes.
        let dup =
            write_temp("jobs_dup.sql", "CREATE VIEW v AS SELECT 1; CREATE VIEW v AS SELECT 2;");
        for args in [
            vec!["extract".to_string(), dup.clone()],
            vec!["extract".to_string(), dup.clone(), "--jobs".to_string(), "2".to_string()],
        ] {
            let (result, _) = execute_to_string(&Command::parse(&args).unwrap());
            let message = result.unwrap_err();
            assert!(message.contains("duplicate query id"), "{message}");
        }
    }

    fn run_session_script(script: &str, common: &CommonOptions) -> String {
        let mut input = std::io::Cursor::new(script.as_bytes().to_vec());
        let mut out = Vec::new();
        run_session(&mut input, &mut out, common).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn session_ingests_and_answers_queries() {
        let text = run_session_script(
            "CREATE TABLE web (cid int, page text, reg boolean);\n\
             CREATE VIEW v AS\n  SELECT page AS p FROM web WHERE reg;\n\
             \\lineage v.p\n\
             \\impact web.page\n\
             \\stats\n\
             \\graph\n\
             \\q\n",
            &CommonOptions::default(),
        );
        assert!(text.contains("#1 schema web"), "{text}");
        assert!(text.contains("#2 defined v"), "{text}");
        assert!(text.contains("re-extracted 1 query"), "{text}");
        assert!(text.contains("v.p <- web.page, web.reg"), "{text}");
        assert!(text.contains("impact of web.page: 1 column(s)"), "{text}");
        assert!(text.contains("statements ingested : 2"), "{text}");
        assert!(text.contains("queries   : 1"), "{text}");
    }

    #[test]
    fn session_redefinition_reports_cone_and_errors_are_not_fatal() {
        let text = run_session_script(
            "CREATE TABLE t (a int);\n\
             CREATE VIEW v AS SELECT a FROM t;\n\
             CREATE VIEW w AS SELECT a FROM v;\n\
             CREATE VIEW v AS SELECT a + a AS a FROM t;\n\
             NOT EVEN SQL;\n\
             \\tables\n\
             \\nonsense\n",
            &CommonOptions::default(),
        );
        assert!(text.contains("redefined v"), "{text}");
        assert!(text.contains("re-extracted 2 queries"), "{text}");
        assert!(text.contains("error:"), "{text}");
        assert!(text.contains("w (View): a"), "{text}");
        assert!(text.contains("unknown command"), "{text}");
    }

    #[test]
    fn session_respects_ddl_option() {
        let ddl = write_temp("session_schema.sql", "CREATE TABLE web (cid int, page text);");
        let common = CommonOptions { ddl: Some(ddl), ..CommonOptions::default() };
        let text = run_session_script("CREATE VIEW v AS SELECT * FROM web;\n\\tables\n", &common);
        assert!(text.contains("v (View): cid, page"), "{text}");
    }

    fn messy_log() -> &'static str {
        "CREATE TABLE web (cid int, page text);\n\
         SELECT FROM oops;\n\
         CREATE VIEW v AS SELECT page FROM web;\n\
         CREATE VIEW v AS SELECT cid FROM web;\n"
    }

    #[test]
    fn strict_extract_fails_on_messy_log() {
        let file = write_temp("messy_strict.sql", messy_log());
        let cmd = Command::parse(&["extract".to_string(), file]).unwrap();
        let (result, _) = execute_to_string(&cmd);
        assert!(result.is_err());
    }

    #[test]
    fn lenient_extract_renders_caret_diagnostics() {
        let file = write_temp("messy_lenient.sql", messy_log());
        let cmd = Command::parse(&["extract".to_string(), file.clone(), "--lenient".to_string()])
            .unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("queries processed : 1"), "{text}");
        // The parse error points at its line with a source excerpt.
        assert!(text.contains(&format!("{file}:2:8: error[parse-error]:")), "{text}");
        assert!(text.contains("SELECT FROM oops;"), "{text}");
        assert!(text.lines().any(|l| l.trim_start().starts_with('^')), "{text}");
        // The duplicate resolved last-definition-wins.
        assert!(text.contains("duplicate-query-id"), "{text}");
    }

    #[test]
    fn diagnostics_json_dumps_structured_findings() {
        let file = write_temp("messy_diag.sql", messy_log());
        let diag = write_temp("messy_diag.json", "");
        let cmd = Command::parse(&[
            "extract".to_string(),
            file,
            "--lenient".to_string(),
            "--diagnostics-json".to_string(),
            diag.clone(),
        ])
        .unwrap();
        execute_to_string(&cmd).0.unwrap();
        let written = std::fs::read_to_string(&diag).unwrap();
        assert!(written.contains("\"code\":"), "{written}");
        assert!(written.contains("parse-error"), "{written}");
        assert!(written.contains("\"line\":"), "{written}");
        assert!(written.contains("\"excerpt\":"), "{written}");
    }

    #[test]
    fn lenient_session_survives_corrupt_statements() {
        let common = CommonOptions { lenient: true, ..CommonOptions::default() };
        let text = run_session_script(
            "CREATE TABLE t (a int);\n\
             SELECT FROM nope;\n\
             CREATE VIEW v AS SELECT a FROM t;\n\
             \\stats\n\\q\n",
            &common,
        );
        assert!(text.contains("failed <unparsable>"), "{text}");
        assert!(text.contains("error[parse-error]"), "{text}");
        assert!(text.contains("defined v"), "{text}");
        assert!(text.contains("parse failure(s)"), "{text}");
    }

    #[test]
    fn client_round_trips_against_a_server() {
        let server = Server::start("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.local_addr().to_string();
        let run = |args: Vec<String>| {
            let mut argv = vec!["client".to_string(), addr.clone()];
            argv.extend(args);
            execute_to_string(&Command::parse(&argv).unwrap())
        };
        // Seed over the wire from a file, like a script would.
        let file = write_temp("client_seed.sql", CHAIN);
        let (result, text) = run(vec!["ingest".into(), file]);
        result.unwrap();
        assert!(text.contains("\"ok\":true"), "{text}");
        assert!(text.contains("\"action\":\"defined\""), "{text}");
        // Query the served snapshot.
        let (result, text) =
            run(vec!["query".into(), "web.page".into(), "--direction".into(), "down".into()]);
        result.unwrap();
        assert!(text.contains("\"column\":\"w.q\""), "{text}");
        // Stats and ping speak the same envelope.
        let (result, text) = run(vec!["stats".into()]);
        result.unwrap();
        assert!(text.contains("\"entries\":2"), "{text}");
        let (result, text) = run(vec!["ping".into()]);
        result.unwrap();
        assert!(text.contains("\"pong\":true"), "{text}");
        // A rejected request prints the line and errors.
        let (result, text) = run(vec!["drop".into(), "w".into()]);
        result.unwrap();
        assert!(text.contains("\"action\":\"dropped\""), "{text}");
        server.shutdown();
    }

    #[test]
    fn client_reports_connection_failure() {
        // A port nothing listens on: bind-then-drop to find a free one.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let cmd = Command::parse(&["client".to_string(), addr, "ping".to_string()]).unwrap();
        let (result, _) = execute_to_string(&cmd);
        assert!(result.unwrap_err().contains("cannot connect"));
    }

    #[test]
    fn timings_summary_lists_populated_histograms_only() {
        use lineagex_obs::{HistogramSummary, MetricsSnapshot};
        use std::collections::BTreeMap;
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "engine.ingest_us".to_string(),
            HistogramSummary { count: 3, sum: 90, max: 63, p50: 31, p90: 63, p99: 63 },
        );
        histograms.insert(
            "engine.refresh_us".to_string(),
            HistogramSummary { count: 0, sum: 0, max: 0, p50: 0, p90: 0, p99: 0 },
        );
        histograms.insert(
            "serve.op.ping_us".to_string(),
            HistogramSummary { count: 9, sum: 9, max: 1, p50: 1, p90: 1, p99: 1 },
        );
        let snapshot = MetricsSnapshot {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms,
            slow_ops: Vec::new(),
        };
        let text = timings_summary(std::time::Duration::from_millis(12), &snapshot);
        assert!(text.starts_with("[timings] total: 12.0 ms"), "{text}");
        assert!(text.contains("engine.ingest_us: count=3 p50=31us p99=63us max=63us"), "{text}");
        assert!(!text.contains("refresh_us"), "empty histograms are omitted: {text}");
        assert!(!text.contains("serve.op"), "serve metrics are not extract timings: {text}");
    }

    #[test]
    fn extract_timings_flag_parses_and_runs() {
        let file = write_temp("timings.sql", LOG);
        let cmd = Command::parse(&["extract".to_string(), file, "--timings".to_string()]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        // The summary goes to stderr; stdout stays the normal report.
        assert!(text.contains("queries processed : 1"), "{text}");
        assert!(!text.contains("[timings]"), "{text}");
    }

    #[test]
    fn client_metrics_and_pretty_round_trip() {
        let server = Server::start("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.local_addr().to_string();
        let file = write_temp("metrics_seed.sql", CHAIN);
        let cmd = Command::parse(&["client".to_string(), addr.clone(), "ingest".to_string(), file])
            .unwrap();
        execute_to_string(&cmd).0.unwrap();
        let cmd =
            Command::parse(&["client".to_string(), addr.clone(), "metrics".to_string()]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("\"counters\""), "{text}");
        assert!(text.contains("\"serve.requests\""), "{text}");
        // --pretty re-renders the same document with indentation.
        let cmd = Command::parse(&[
            "client".to_string(),
            addr,
            "metrics".to_string(),
            "--pretty".to_string(),
        ])
        .unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("    \"counters\": {"), "{text}");
        server.shutdown();
    }

    #[test]
    fn extract_respects_the_dialect_flag() {
        let tsql = "CREATE TABLE [raw web] (cid int, page text);\n\
                    CREATE VIEW v AS SELECT TOP 5 page AS p FROM [raw web];\n";
        let file = write_temp("dialect_extract.sql", tsql);
        // Under the default (ANSI-permissive) grammar TOP is a parse error.
        let cmd = Command::parse(&["extract".to_string(), file.clone()]).unwrap();
        assert!(execute_to_string(&cmd).0.is_err());
        // Under --dialect tsql the same file extracts cleanly — on the
        // batch path and the engine path alike.
        for extra in [vec![], vec!["--jobs".to_string(), "2".to_string()]] {
            let mut argv =
                vec!["extract".to_string(), file.clone(), "--dialect".to_string(), "tsql".into()];
            argv.extend(extra);
            let (result, text) = execute_to_string(&Command::parse(&argv).unwrap());
            result.unwrap();
            assert!(text.contains("queries processed : 1"), "{text}");
        }
    }

    #[test]
    fn session_respects_the_dialect_flag() {
        let common =
            CommonOptions { dialect: Some(DialectKind::BigQuery), ..CommonOptions::default() };
        let text = run_session_script(
            "# BigQuery hash comment\n\
             CREATE TABLE `raw web` (cid INT64, page STRING);\n\
             CREATE VIEW v AS SELECT page AS p FROM `raw web`;\n\
             \\lineage v.p\n\\q\n",
            &common,
        );
        assert!(text.contains("defined v"), "{text}");
        assert!(text.contains("v.p <- raw web.page"), "{text}");
    }

    #[test]
    fn client_ingest_checks_the_server_dialect() {
        let server = Server::start("127.0.0.1:0", ServeOptions::default()).unwrap();
        let addr = server.local_addr().to_string();
        let file = write_temp("dialect_client.sql", CHAIN);
        // The server session is pinned to ANSI: a matching check passes...
        let cmd = Command::parse(&[
            "client".to_string(),
            addr.clone(),
            "ingest".to_string(),
            file.clone(),
            "--dialect".to_string(),
            "ansi".to_string(),
        ])
        .unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("\"ok\":true"), "{text}");
        // ... and a mismatched one refuses before sending any SQL.
        let cmd = Command::parse(&[
            "client".to_string(),
            addr,
            "ingest".to_string(),
            file,
            "--dialect".to_string(),
            "snowflake".to_string(),
        ])
        .unwrap();
        let (result, _) = execute_to_string(&cmd);
        let message = result.unwrap_err();
        assert!(message.contains("\"ansi\""), "{message}");
        assert!(message.contains("\"snowflake\""), "{message}");
        server.shutdown();
    }

    #[test]
    fn serve_adopts_or_rejects_a_snapshot_dialect() {
        // Build a Snowflake-dialect snapshot via extract --save-snapshot.
        let sql = "CREATE TABLE web (cid int, page text);\n\
                   // Snowflake line comment\n\
                   CREATE VIEW v AS SELECT page AS p FROM web QUALIFY 1 = 1;\n";
        let file = write_temp("dialect_snapshot.sql", sql);
        let snap = write_temp("dialect_snapshot.lxsn", "");
        let cmd = Command::parse(&[
            "extract".to_string(),
            file,
            "--dialect".to_string(),
            "snowflake".to_string(),
            "--save-snapshot".to_string(),
            snap.clone(),
        ])
        .unwrap();
        execute_to_string(&cmd).0.unwrap();
        // Unpinned serve adopts the snapshot's dialect.
        let options = ServeOptions {
            snapshot_path: Some(std::path::PathBuf::from(&snap)),
            ..ServeOptions::default()
        };
        let server = Server::start("127.0.0.1:0", options).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.server_dialect().unwrap(), "snowflake");
        server.shutdown();
        // A conflicting pinned dialect fails startup with a typed error.
        let options = ServeOptions {
            snapshot_path: Some(std::path::PathBuf::from(&snap)),
            engine: EngineOptions {
                extract: ExtractOptions::new().with_dialect(DialectKind::TSql),
                ..EngineOptions::default()
            },
            dialect_pinned: true,
            ..ServeOptions::default()
        };
        let error = match Server::start("127.0.0.1:0", options) {
            Err(error) => error,
            Ok(_) => panic!("a conflicting pinned dialect must fail startup"),
        };
        assert!(error.to_string().contains("snowflake"), "{error}");
        // A matching pinned dialect starts fine.
        let options = ServeOptions {
            snapshot_path: Some(std::path::PathBuf::from(&snap)),
            engine: EngineOptions {
                extract: ExtractOptions::new().with_dialect(DialectKind::Snowflake),
                ..EngineOptions::default()
            },
            dialect_pinned: true,
            ..ServeOptions::default()
        };
        let server = Server::start("127.0.0.1:0", options).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.server_dialect().unwrap(), "snowflake");
        server.shutdown();
    }

    #[test]
    fn trace_flag_prints_rules() {
        let file = write_temp("trace.sql", LOG);
        let cmd = Command::parse(&["extract".to_string(), file, "--trace".to_string()]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("FROM (Table/View)"), "{text}");
    }
}
