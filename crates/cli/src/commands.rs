//! Command execution.

use crate::args::{Command, CommonOptions};
use lineagex_baseline::metrics::{graph_contribute_edges, score_edges};
use lineagex_baseline::SqlLineageLike;
use lineagex_catalog::{Catalog, SimulatedDatabase};
use lineagex_core::{path_between, LineageResult, LineageX, SourceColumn};
use lineagex_viz::{to_dot, to_html, to_mermaid, to_output_json};
use std::io::Write;

type CmdResult = Result<(), String>;

/// Execute a parsed command, writing human-readable output to `out`.
pub fn execute(command: &Command, out: &mut dyn Write) -> CmdResult {
    match command {
        Command::Extract { file, json, dot, html, mermaid, common } => {
            let result = run_extraction(file, common)?;
            summarize(&result, out)?;
            if let Some(path) = json {
                write_file(path, &to_output_json(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = dot {
                write_file(path, &to_dot(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = html {
                write_file(path, &to_html(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if let Some(path) = mermaid {
                write_file(path, &to_mermaid(&result.graph))?;
                wln(out, &format!("wrote {path}"))?;
            }
            if common.trace {
                for (id, trace) in &result.traces {
                    wln(out, &format!("\ntrace of {id}:\n{trace}"))?;
                }
            }
            Ok(())
        }
        Command::Impact { column, file, common } => {
            let result = run_extraction(file, common)?;
            let origin = SourceColumn::new(&column.0, &column.1);
            if !result.graph.has_column(&origin) {
                return Err(format!("column {origin} does not exist in the lineage graph"));
            }
            let report = lineagex_core::impact_of(&result.graph, &origin);
            wln(out, &format!("impact of {origin}: {} column(s)", report.impacted.len()))?;
            for (table, cols) in report.by_table() {
                let rendered: Vec<String> = cols
                    .iter()
                    .map(|c| format!("{} ({:?}, {} hop(s))", c.column.column, c.kind, c.distance))
                    .collect();
                wln(out, &format!("  {table}: {}", rendered.join(", ")))?;
            }
            Ok(())
        }
        Command::Path { from, to, file, common } => {
            let result = run_extraction(file, common)?;
            let from = SourceColumn::new(&from.0, &from.1);
            let to = SourceColumn::new(&to.0, &to.1);
            match path_between(&result.graph, &from, &to) {
                Some(path) => {
                    wln(out, &format!("{from}"))?;
                    for (col, kind) in path {
                        wln(out, &format!("  -> {col} ({kind:?})"))?;
                    }
                    Ok(())
                }
                None => Err(format!("{to} is not downstream of {from}")),
            }
        }
        Command::Explain { file, common } => {
            let sql = read_file(file)?;
            let ddl = read_file(common.ddl.as_ref().expect("validated by parser"))?;
            let catalog = Catalog::from_ddl(&ddl).map_err(|e| e.to_string())?;
            let db = SimulatedDatabase::with_catalog(catalog);
            let statements = lineagex_sqlparse::parse_sql(&sql).map_err(|e| e.to_string())?;
            let mut db = db;
            for stmt in &statements {
                if stmt.defining_query().is_none() && stmt.update_as_query().is_none() {
                    continue;
                }
                wln(out, &format!("-- {stmt}"))?;
                let bound = db.explain(&stmt.to_string()).map_err(|e| e.to_string())?;
                wln(out, &bound.plan.to_string())?;
                // Create views so later statements can reference them.
                db.execute_statement(stmt).map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Compare { file, common } => {
            let sql = read_file(file)?;
            let ours = run_extraction_sql(&sql, common)?;
            let ours_edges = graph_contribute_edges(&ours.graph);
            let baseline = SqlLineageLike::new().extract(&sql).map_err(|e| e.to_string())?;
            let base_edges = graph_contribute_edges(&baseline);
            // Without independent ground truth, report mutual agreement:
            // edges only we find, only the baseline finds, and shared.
            let shared = ours_edges.intersection(&base_edges).count();
            wln(out, "contribute-edge comparison (LineageX vs SQLLineage-like):")?;
            wln(out, &format!("  LineageX edges : {}", ours_edges.len()))?;
            wln(out, &format!("  baseline edges : {}", base_edges.len()))?;
            wln(out, &format!("  shared         : {shared}"))?;
            let agreement = score_edges(&base_edges, &ours_edges);
            wln(
                out,
                &format!(
                    "  baseline vs LineageX-as-reference: precision {:.1}% recall {:.1}%",
                    100.0 * agreement.precision(),
                    100.0 * agreement.recall()
                ),
            )?;
            for edge in ours_edges.difference(&base_edges).take(10) {
                wln(out, &format!("  only LineageX: {} -> {}", edge.0, edge.1))?;
            }
            for edge in base_edges.difference(&ours_edges).take(10) {
                wln(out, &format!("  only baseline: {} -> {}", edge.0, edge.1))?;
            }
            Ok(())
        }
    }
}

fn run_extraction(file: &str, common: &CommonOptions) -> Result<LineageResult, String> {
    let sql = read_file(file)?;
    run_extraction_sql(&sql, common)
}

fn run_extraction_sql(sql: &str, common: &CommonOptions) -> Result<LineageResult, String> {
    let mut builder = LineageX::new().ambiguity(common.ambiguity);
    if let Some(ddl_path) = &common.ddl {
        let ddl = read_file(ddl_path)?;
        builder = builder.with_ddl(&ddl).map_err(|e| e.to_string())?;
    }
    if common.trace {
        builder = builder.trace();
    }
    if common.no_auto_inference {
        builder = builder.without_auto_inference();
    }
    builder.run(sql).map_err(|e| e.to_string())
}

fn summarize(result: &LineageResult, out: &mut dyn Write) -> CmdResult {
    wln(out, &format!("queries processed : {}", result.graph.queries.len()))?;
    wln(out, &format!("processing order  : {:?}", result.graph.order))?;
    if !result.deferrals.is_empty() {
        wln(out, &format!("stack deferrals   : {:?}", result.deferrals))?;
    }
    wln(out, &format!("relations in graph: {}", result.graph.nodes.len()))?;
    wln(out, &format!("column nodes      : {}", result.graph.column_count()))?;
    wln(out, &format!("column edges      : {}", result.graph.all_edges().len()))?;
    let mut warning_count = result.warnings.len();
    for q in result.graph.queries.values() {
        warning_count += q.warnings.len();
    }
    wln(out, &format!("warnings          : {warning_count}"))?;
    for q in result.graph.queries.values() {
        for w in &q.warnings {
            wln(out, &format!("  [{}] {w:?}", q.id))?;
        }
    }
    Ok(())
}

fn wln(out: &mut dyn Write, line: &str) -> CmdResult {
    writeln!(out, "{line}").map_err(|e| e.to_string())
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write_file(path: &str, content: &str) -> CmdResult {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("lineagex_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const LOG: &str = "
        CREATE TABLE web (cid int, page text, reg boolean);
        CREATE VIEW v AS SELECT page AS p FROM web WHERE reg;
    ";

    fn execute_to_string(command: &Command) -> (CmdResult, String) {
        let mut out = Vec::new();
        let result = execute(command, &mut out);
        (result, String::from_utf8(out).unwrap())
    }

    #[test]
    fn extract_summarizes() {
        let file = write_temp("extract.sql", LOG);
        let cmd = Command::parse(&["extract".to_string(), file]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("queries processed : 1"), "{text}");
        assert!(text.contains("column edges"), "{text}");
    }

    #[test]
    fn extract_writes_artifacts() {
        let file = write_temp("artifacts.sql", LOG);
        let json = write_temp("artifacts.json", "");
        let cmd =
            Command::parse(&["extract".to_string(), file, "--json".to_string(), json.clone()])
                .unwrap();
        execute_to_string(&cmd).0.unwrap();
        let written = std::fs::read_to_string(&json).unwrap();
        assert!(written.contains("\"queries\""));
    }

    #[test]
    fn impact_reports_downstream() {
        let file = write_temp("impact.sql", LOG);
        let cmd = Command::parse(&["impact".to_string(), "web.page".to_string(), file]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("v: p"), "{text}");
    }

    #[test]
    fn impact_unknown_column_errors() {
        let file = write_temp("impact_bad.sql", LOG);
        let cmd = Command::parse(&["impact".to_string(), "web.ghost".to_string(), file]).unwrap();
        let (result, _) = execute_to_string(&cmd);
        assert!(result.is_err());
    }

    #[test]
    fn path_prints_hops() {
        let file = write_temp("path.sql", LOG);
        let cmd =
            Command::parse(&["path".to_string(), "web.page".to_string(), "v.p".to_string(), file])
                .unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("-> v.p"), "{text}");
    }

    #[test]
    fn explain_prints_plans() {
        let ddl = write_temp("schema.sql", "CREATE TABLE web (cid int, page text);");
        let queries = write_temp("explain.sql", "CREATE VIEW v AS SELECT page FROM web;");
        let cmd =
            Command::parse(&["explain".to_string(), queries, "--ddl".to_string(), ddl]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("Seq Scan on web"), "{text}");
    }

    #[test]
    fn compare_reports_edge_sets() {
        let file = write_temp("compare.sql", LOG);
        let cmd = Command::parse(&["compare".to_string(), file]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("LineageX edges"), "{text}");
    }

    #[test]
    fn trace_flag_prints_rules() {
        let file = write_temp("trace.sql", LOG);
        let cmd = Command::parse(&["extract".to_string(), file, "--trace".to_string()]).unwrap();
        let (result, text) = execute_to_string(&cmd);
        result.unwrap();
        assert!(text.contains("FROM (Table/View)"), "{text}");
    }
}
