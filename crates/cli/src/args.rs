//! Hand-rolled argument parsing (no external dependencies).

use lineagex_core::{AmbiguityPolicy, DialectKind};

/// The usage banner.
pub const USAGE: &str = "\
usage:
  lineagex extract  <queries.sql> [--ddl <schema.sql>] [--json <out>] [--json-v1 <out>]
                    [--dot <out>] [--html <out>] [--mermaid <out>] [--trace]
                    [--ambiguity all|first|error] [--no-auto-inference] [--jobs <N>]
                    [--lenient] [--diagnostics-json <out>] [--timings]
                    [--save-snapshot <out.lxsn>] [--dialect <name>]
                    (--json emits the versioned schema_version-2 document;
                     --json-v1 keeps the legacy output.json; --timings prints a
                     phase/metrics summary to stderr; --save-snapshot persists
                     the settled session in the binary snapshot format for
                     `serve --load-snapshot`)
  lineagex query    <origin>[,<origin>...] <queries.sql> [--ddl <schema.sql>]
                    [--direction down|up] [--depth <N>]
                    [--edge-kind contribute|reference|both]... [--table-level]
                    [--to <table.column>] [--format text|json|json-v1|dot|mermaid]
                    [--jobs <N>] [--lenient] [--dialect <name>]
                    (composable GraphQuery: an origin is table.column, or a bare
                     relation name for all of its columns)
  lineagex session  [--ddl <schema.sql>] [--jobs <N>] [--ambiguity all|first|error] [--lenient]
                    [--dialect <name>]
                    (incremental REPL: statements from stdin, \\commands for queries)
  lineagex serve    [--addr <host:port>] [--ddl <schema.sql>] [--jobs <N>]
                    [--ambiguity all|first|error] [--lenient] [--dialect <name>]
                    [--verbose] [--slow-ms <N>] [--load-snapshot <in.lxsn>]
                    (long-lived JSON-lines lineage service; default addr
                     127.0.0.1:7117; stop with `lineagex client <addr> shutdown`;
                     --verbose logs one stderr line per connection/publish/slow
                     request, --slow-ms sets the slow threshold, default 100;
                     --load-snapshot cold-starts from an `extract
                     --save-snapshot` file without re-parsing or re-extracting)
  lineagex client   <host:port> <op> [args] [query flags] [--pretty]
                    (ops: ping | report | stats | diagnostics | metrics | refresh
                     | shutdown | ingest <file.sql> [--dialect <name>]
                     | drop <name>[,<name>...]
                     | query <origin>[,<origin>...] [--direction down|up]
                       [--depth <N>] [--edge-kind contribute|reference|both]
                       [--table-level] [--to <table.column>];
                     prints the server's raw JSON response line, or an indented
                     rendering with --pretty)
  lineagex impact   <table.column> <queries.sql> [--ddl <schema.sql>]
  lineagex path     <from.column> <to.column> <queries.sql> [--ddl <schema.sql>]
  lineagex explain  <queries.sql> --ddl <schema.sql>
  lineagex compare  <queries.sql> [--ddl <schema.sql>]

  --dialect <name> picks the SQL dialect front end:
  ansi (default) | postgres | snowflake | bigquery | tsql.
  serve --load-snapshot adopts the snapshot's recorded dialect unless
  --dialect pins one (a mismatch then fails startup); client ingest
  --dialect checks the server session's dialect before sending SQL.";

/// Output format of the `query` subcommand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueryFormat {
    /// Human-readable summary (the default).
    #[default]
    Text,
    /// The schema-version-2 query document.
    Json,
    /// The legacy whole-run v1 document (cone slicing is a v2
    /// capability; this renders the full graph).
    JsonV1,
    /// Graphviz DOT of the traversal cone.
    Dot,
    /// Mermaid flowchart of the traversal cone.
    Mermaid,
}

/// Options shared by every subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommonOptions {
    /// Path to a DDL file providing base-table schemas.
    pub ddl: Option<String>,
    /// Ambiguity policy (default: attribute-all).
    pub ambiguity: AmbiguityPolicy,
    /// Disable the auto-inference stack.
    pub no_auto_inference: bool,
    /// Record traversal traces.
    pub trace: bool,
    /// Worker threads for batch extraction (0/1 = sequential; > 1 routes
    /// through the incremental engine's parallel scheduler).
    pub jobs: usize,
    /// Lenient mode: corrupt statements, duplicate ids, and unresolvable
    /// columns degrade into diagnostics instead of aborting.
    pub lenient: bool,
    /// `--dialect`: the SQL dialect front end. `None` means the flag was
    /// not given — commands default to ANSI, and `serve --load-snapshot`
    /// adopts the snapshot's recorded dialect.
    pub dialect: Option<DialectKind>,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `extract` with optional artefact outputs.
    Extract {
        /// The SQL file to analyse.
        file: String,
        /// `--json` output path (the versioned v2 document).
        json: Option<String>,
        /// `--json-v1` output path (the legacy `output.json`).
        json_v1: Option<String>,
        /// `--dot` output path.
        dot: Option<String>,
        /// `--html` output path.
        html: Option<String>,
        /// `--mermaid` output path.
        mermaid: Option<String>,
        /// `--diagnostics-json` output path: every diagnostic of the run
        /// as structured JSON (code, severity, span, excerpt).
        diagnostics_json: Option<String>,
        /// `--timings`: print a phase/metrics summary to stderr.
        timings: bool,
        /// `--save-snapshot` output path: persist the settled session in
        /// the binary snapshot format (forces the engine path).
        save_snapshot: Option<String>,
        /// Shared options.
        common: CommonOptions,
    },
    /// `query <origin>[,<origin>...]`: the composable GraphQuery front
    /// door.
    Query {
        /// Origins: `table.column` specs or bare relation names.
        origins: Vec<String>,
        /// The SQL file.
        file: String,
        /// Walk upstream instead of downstream.
        upstream: bool,
        /// `--depth`: maximum hops.
        depth: Option<usize>,
        /// `--edge-kind` filters (repeatable).
        edge_kinds: Vec<String>,
        /// `--table-level`: relation-granularity traversal.
        table_level: bool,
        /// `--to`: also compute the shortest path to this column.
        to: Option<(String, String)>,
        /// `--format`: output format.
        format: QueryFormat,
        /// Shared options.
        common: CommonOptions,
    },
    /// `impact <table.column>`.
    Impact {
        /// The origin column as `table.column`.
        column: (String, String),
        /// The SQL file.
        file: String,
        /// Shared options.
        common: CommonOptions,
    },
    /// `path <from> <to>`.
    Path {
        /// Origin column.
        from: (String, String),
        /// Target column.
        to: (String, String),
        /// The SQL file.
        file: String,
        /// Shared options.
        common: CommonOptions,
    },
    /// `explain` through the simulated database.
    Explain {
        /// The SQL file.
        file: String,
        /// Shared options (requires `--ddl`).
        common: CommonOptions,
    },
    /// `compare` against the SQLLineage-like baseline.
    Compare {
        /// The SQL file.
        file: String,
        /// Shared options.
        common: CommonOptions,
    },
    /// `session`: incremental REPL over stdin.
    Session {
        /// Shared options.
        common: CommonOptions,
    },
    /// `serve`: the long-lived JSON-lines lineage service.
    Serve {
        /// `--addr`: the address to bind.
        addr: String,
        /// `--verbose`: one structured stderr line per server event.
        verbose: bool,
        /// `--slow-ms`: slow-request threshold in milliseconds (unset =
        /// the server default).
        slow_ms: Option<u64>,
        /// `--load-snapshot`: restore the session from a binary snapshot
        /// instead of starting empty.
        load_snapshot: Option<String>,
        /// Shared options (`--ddl` preloads schemas; `--jobs` sizes the
        /// refresh worker pool).
        common: CommonOptions,
    },
    /// `client <addr> <op>`: one scripted request against a running
    /// server; prints the raw response line.
    Client {
        /// The server address.
        addr: String,
        /// The request to send.
        op: ClientOp,
        /// `--pretty`: pretty-print the JSON response instead of dumping
        /// the raw line.
        pretty: bool,
    },
}

/// One `lineagex client` operation.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientOp {
    /// Liveness probe.
    Ping,
    /// Fetch the full `ReportV2` document.
    Report,
    /// Fetch graph/engine/server statistics.
    Stats,
    /// Fetch session-level diagnostics.
    Diagnostics,
    /// Fetch a snapshot of the server's observability registry.
    Metrics,
    /// Settle pending work.
    Refresh,
    /// Drain and stop the server.
    Shutdown,
    /// Ingest a SQL file.
    Ingest {
        /// Path of the SQL file to send.
        file: String,
        /// `--dialect`: refuse to send unless the server session is
        /// pinned to this dialect (checked via the `stats` op).
        dialect: Option<DialectKind>,
    },
    /// Drop relations by name.
    Drop {
        /// Relations to drop.
        names: Vec<String>,
    },
    /// Run a graph query against the served snapshot.
    Query {
        /// Origins: `table.column` specs or bare relation names.
        origins: Vec<String>,
        /// Walk upstream instead of downstream.
        upstream: bool,
        /// `--depth`: maximum hops.
        depth: Option<usize>,
        /// `--edge-kind` filter (at most one over the wire).
        edge_kind: Option<String>,
        /// `--table-level`: relation-granularity traversal.
        table_level: bool,
        /// `--to`: also compute the shortest path to this column.
        to: Option<(String, String)>,
    },
}

impl Command {
    /// Parse an argument vector (without the program name).
    pub fn parse(argv: &[String]) -> Result<Command, String> {
        let mut positional: Vec<String> = Vec::new();
        let mut common = CommonOptions::default();
        let mut json = None;
        let mut json_v1 = None;
        let mut dot = None;
        let mut html = None;
        let mut mermaid = None;
        let mut diagnostics_json = None;
        let mut upstream = false;
        let mut depth = None;
        let mut edge_kinds = Vec::new();
        let mut table_level = false;
        let mut to = None;
        let mut format = QueryFormat::default();
        let mut addr = None;
        let mut timings = false;
        let mut verbose = false;
        let mut slow_ms = None;
        let mut pretty = false;
        let mut save_snapshot = None;
        let mut load_snapshot = None;

        let mut iter = argv.iter().peekable();
        let Some(sub) = iter.next() else {
            return Err("a subcommand is required".into());
        };

        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--ddl" => common.ddl = Some(take_value(&mut iter, "--ddl")?),
                "--addr" => addr = Some(take_value(&mut iter, "--addr")?),
                "--json" => json = Some(take_value(&mut iter, "--json")?),
                "--json-v1" => json_v1 = Some(take_value(&mut iter, "--json-v1")?),
                "--direction" => {
                    upstream = match take_value(&mut iter, "--direction")?.as_str() {
                        "down" | "downstream" => false,
                        "up" | "upstream" => true,
                        other => {
                            return Err(format!(
                                "invalid --direction value {other:?} (use down|up)"
                            ))
                        }
                    };
                }
                "--depth" => {
                    let value = take_value(&mut iter, "--depth")?;
                    depth =
                        Some(value.parse().map_err(|_| {
                            format!("invalid --depth value {value:?} (use a number)")
                        })?);
                }
                "--edge-kind" => {
                    let value = take_value(&mut iter, "--edge-kind")?;
                    match value.as_str() {
                        "contribute" | "reference" | "both" => edge_kinds.push(value),
                        other => {
                            return Err(format!(
                                "invalid --edge-kind value {other:?} \
                                 (use contribute|reference|both)"
                            ))
                        }
                    }
                }
                "--table-level" => table_level = true,
                "--to" => to = Some(parse_column(&take_value(&mut iter, "--to")?)?),
                "--format" => {
                    format = match take_value(&mut iter, "--format")?.as_str() {
                        "text" => QueryFormat::Text,
                        "json" => QueryFormat::Json,
                        "json-v1" => QueryFormat::JsonV1,
                        "dot" => QueryFormat::Dot,
                        "mermaid" => QueryFormat::Mermaid,
                        other => {
                            return Err(format!(
                                "invalid --format value {other:?} \
                                 (use text|json|json-v1|dot|mermaid)"
                            ))
                        }
                    };
                }
                "--dot" => dot = Some(take_value(&mut iter, "--dot")?),
                "--html" => html = Some(take_value(&mut iter, "--html")?),
                "--mermaid" => mermaid = Some(take_value(&mut iter, "--mermaid")?),
                "--diagnostics-json" => {
                    diagnostics_json = Some(take_value(&mut iter, "--diagnostics-json")?)
                }
                "--save-snapshot" => {
                    save_snapshot = Some(take_value(&mut iter, "--save-snapshot")?)
                }
                "--load-snapshot" => {
                    load_snapshot = Some(take_value(&mut iter, "--load-snapshot")?)
                }
                "--trace" => common.trace = true,
                "--timings" => timings = true,
                "--verbose" => verbose = true,
                "--pretty" => pretty = true,
                "--slow-ms" => {
                    let value = take_value(&mut iter, "--slow-ms")?;
                    slow_ms = Some(value.parse().map_err(|_| {
                        format!("invalid --slow-ms value {value:?} (use a number)")
                    })?);
                }
                "--lenient" => common.lenient = true,
                "--dialect" => {
                    let value = take_value(&mut iter, "--dialect")?;
                    common.dialect = Some(DialectKind::parse(&value).ok_or_else(|| {
                        format!(
                            "invalid --dialect value {value:?} \
                             (use ansi|postgres|snowflake|bigquery|tsql)"
                        )
                    })?);
                }
                "--no-auto-inference" => common.no_auto_inference = true,
                "--jobs" => {
                    let value = take_value(&mut iter, "--jobs")?;
                    common.jobs = value
                        .parse()
                        .map_err(|_| format!("invalid --jobs value {value:?} (use a number)"))?;
                }
                "--ambiguity" => {
                    common.ambiguity = match take_value(&mut iter, "--ambiguity")?.as_str() {
                        "all" => AmbiguityPolicy::AttributeAll,
                        "first" => AmbiguityPolicy::FirstMatch,
                        "error" => AmbiguityPolicy::Error,
                        other => {
                            return Err(format!(
                                "invalid --ambiguity value {other:?} (use all|first|error)"
                            ))
                        }
                    };
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag}"));
                }
                _ => positional.push(arg.clone()),
            }
        }

        match sub.as_str() {
            "extract" => {
                let [file] = take_positional::<1>(positional, "extract <queries.sql>")?;
                Ok(Command::Extract {
                    file,
                    json,
                    json_v1,
                    dot,
                    html,
                    mermaid,
                    diagnostics_json,
                    timings,
                    save_snapshot,
                    common,
                })
            }
            "query" => {
                let [origins, file] =
                    take_positional::<2>(positional, "query <origin>[,<origin>...] <queries.sql>")?;
                let origins: Vec<String> = origins
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| s.to_lowercase())
                    .collect();
                if origins.is_empty() {
                    return Err("query requires at least one origin".into());
                }
                Ok(Command::Query {
                    origins,
                    file,
                    upstream,
                    depth,
                    edge_kinds,
                    table_level,
                    to,
                    format,
                    common,
                })
            }
            "impact" => {
                let [column, file] =
                    take_positional::<2>(positional, "impact <table.column> <queries.sql>")?;
                Ok(Command::Impact { column: parse_column(&column)?, file, common })
            }
            "path" => {
                let [from, to, file] = take_positional::<3>(
                    positional,
                    "path <from.column> <to.column> <queries.sql>",
                )?;
                Ok(Command::Path {
                    from: parse_column(&from)?,
                    to: parse_column(&to)?,
                    file,
                    common,
                })
            }
            "explain" => {
                let [file] = take_positional::<1>(positional, "explain <queries.sql>")?;
                if common.ddl.is_none() {
                    return Err("explain requires --ddl <schema.sql>".into());
                }
                Ok(Command::Explain { file, common })
            }
            "compare" => {
                let [file] = take_positional::<1>(positional, "compare <queries.sql>")?;
                Ok(Command::Compare { file, common })
            }
            "session" => {
                let [] = take_positional::<0>(positional, "session (no positional arguments)")?;
                Ok(Command::Session { common })
            }
            "serve" => {
                let [] = take_positional::<0>(positional, "serve (no positional arguments)")?;
                Ok(Command::Serve {
                    addr: addr.unwrap_or_else(|| "127.0.0.1:7117".to_string()),
                    verbose,
                    slow_ms,
                    load_snapshot,
                    common,
                })
            }
            "client" => {
                if positional.len() < 2 {
                    return Err("expected client <host:port> <op> [args]".into());
                }
                let mut parts = positional.into_iter();
                let addr = parts.next().expect("len checked");
                let op_name = parts.next().expect("len checked");
                let rest: Vec<String> = parts.collect();
                let no_args = |op: ClientOp| {
                    if rest.is_empty() {
                        Ok(op)
                    } else {
                        Err(format!("client {op_name} takes no further arguments"))
                    }
                };
                let op = match op_name.as_str() {
                    "ping" => no_args(ClientOp::Ping)?,
                    "report" => no_args(ClientOp::Report)?,
                    "stats" => no_args(ClientOp::Stats)?,
                    "diagnostics" => no_args(ClientOp::Diagnostics)?,
                    "metrics" => no_args(ClientOp::Metrics)?,
                    "refresh" => no_args(ClientOp::Refresh)?,
                    "shutdown" => no_args(ClientOp::Shutdown)?,
                    "ingest" => {
                        let [file] = take_positional::<1>(rest, "client <addr> ingest <file.sql>")?;
                        ClientOp::Ingest { file, dialect: common.dialect }
                    }
                    "drop" => {
                        let [names] =
                            take_positional::<1>(rest, "client <addr> drop <name>[,<name>...]")?;
                        let names: Vec<String> = split_list(&names);
                        if names.is_empty() {
                            return Err("drop requires at least one relation name".into());
                        }
                        ClientOp::Drop { names }
                    }
                    "query" => {
                        let [origins] = take_positional::<1>(
                            rest,
                            "client <addr> query <origin>[,<origin>...]",
                        )?;
                        let origins = split_list(&origins);
                        if origins.is_empty() {
                            return Err("query requires at least one origin".into());
                        }
                        if edge_kinds.len() > 1 {
                            return Err(
                                "client query supports at most one --edge-kind filter".into()
                            );
                        }
                        ClientOp::Query {
                            origins,
                            upstream,
                            depth,
                            edge_kind: edge_kinds.pop(),
                            table_level,
                            to,
                        }
                    }
                    other => {
                        return Err(format!(
                            "unknown client op {other:?} (use ping|report|stats|diagnostics|\
                             metrics|refresh|shutdown|ingest|drop|query)"
                        ))
                    }
                };
                Ok(Command::Client { addr, op, pretty })
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

fn take_value(
    iter: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<String, String> {
    iter.next().cloned().ok_or_else(|| format!("{flag} requires a value"))
}

fn take_positional<const N: usize>(
    positional: Vec<String>,
    shape: &str,
) -> Result<[String; N], String> {
    positional
        .try_into()
        .map_err(|got: Vec<String>| format!("expected {shape}, got {} argument(s)", got.len()))
}

/// Split a comma-separated list, trimming and lower-casing each item.
fn split_list(raw: &str) -> Vec<String> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_lowercase).collect()
}

/// Split `table.column` (the column part may not contain further dots).
pub fn parse_column(spec: &str) -> Result<(String, String), String> {
    match spec.rsplit_once('.') {
        Some((table, column)) if !table.is_empty() && !column.is_empty() => {
            Ok((table.to_lowercase(), column.to_lowercase()))
        }
        _ => Err(format!("expected <table.column>, got {spec:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Command::parse(&argv)
    }

    #[test]
    fn parses_extract_with_outputs() {
        let cmd = parse(&[
            "extract", "q.sql", "--ddl", "s.sql", "--json", "o.json", "--html", "o.html", "--trace",
        ])
        .unwrap();
        match cmd {
            Command::Extract { file, json, dot, html, mermaid, common, .. } => {
                assert_eq!(file, "q.sql");
                assert!(mermaid.is_none());
                assert_eq!(json.as_deref(), Some("o.json"));
                assert!(dot.is_none());
                assert_eq!(html.as_deref(), Some("o.html"));
                assert_eq!(common.ddl.as_deref(), Some("s.sql"));
                assert!(common.trace);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_query() {
        let cmd = parse(&[
            "query",
            "web.page,web.cid",
            "q.sql",
            "--direction",
            "up",
            "--depth",
            "3",
            "--edge-kind",
            "contribute",
            "--edge-kind",
            "reference",
            "--to",
            "info.wreg",
            "--format",
            "json",
        ])
        .unwrap();
        match cmd {
            Command::Query { origins, file, upstream, depth, edge_kinds, to, format, .. } => {
                assert_eq!(origins, vec!["web.page", "web.cid"]);
                assert_eq!(file, "q.sql");
                assert!(upstream);
                assert_eq!(depth, Some(3));
                assert_eq!(edge_kinds, vec!["contribute", "reference"]);
                assert_eq!(to, Some(("info".into(), "wreg".into())));
                assert_eq!(format, QueryFormat::Json);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: downstream, unlimited depth, text format.
        let cmd = parse(&["query", "web", "q.sql", "--table-level"]).unwrap();
        match cmd {
            Command::Query { origins, upstream, depth, table_level, format, .. } => {
                assert_eq!(origins, vec!["web"]);
                assert!(!upstream);
                assert_eq!(depth, None);
                assert!(table_level);
                assert_eq!(format, QueryFormat::Text);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn query_error_cases() {
        assert!(parse(&["query", "q.sql"]).is_err());
        assert!(parse(&["query", ",", "q.sql"]).is_err());
        assert!(parse(&["query", "t.c", "q.sql", "--direction", "sideways"]).is_err());
        assert!(parse(&["query", "t.c", "q.sql", "--depth", "many"]).is_err());
        assert!(parse(&["query", "t.c", "q.sql", "--edge-kind", "psychic"]).is_err());
        assert!(parse(&["query", "t.c", "q.sql", "--format", "yaml"]).is_err());
        assert!(parse(&["query", "t.c", "q.sql", "--to", "nodot"]).is_err());
    }

    #[test]
    fn parses_extract_json_v1() {
        let cmd = parse(&["extract", "q.sql", "--json-v1", "old.json"]).unwrap();
        match cmd {
            Command::Extract { json, json_v1, .. } => {
                assert!(json.is_none());
                assert_eq!(json_v1.as_deref(), Some("old.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_impact() {
        let cmd = parse(&["impact", "web.page", "q.sql"]).unwrap();
        match cmd {
            Command::Impact { column, file, .. } => {
                assert_eq!(column, ("web".to_string(), "page".to_string()));
                assert_eq!(file, "q.sql");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_path() {
        let cmd = parse(&["path", "web.page", "info.wreg", "q.sql"]).unwrap();
        assert!(matches!(cmd, Command::Path { .. }));
    }

    #[test]
    fn ambiguity_values() {
        for (value, expected) in [
            ("all", AmbiguityPolicy::AttributeAll),
            ("first", AmbiguityPolicy::FirstMatch),
            ("error", AmbiguityPolicy::Error),
        ] {
            let cmd = parse(&["extract", "q.sql", "--ambiguity", value]).unwrap();
            match cmd {
                Command::Extract { common, .. } => assert_eq!(common.ambiguity, expected),
                other => panic!("{other:?}"),
            }
        }
        assert!(parse(&["extract", "q.sql", "--ambiguity", "maybe"]).is_err());
    }

    #[test]
    fn parses_session_and_jobs() {
        let cmd = parse(&["session", "--ddl", "s.sql", "--jobs", "4"]).unwrap();
        match cmd {
            Command::Session { common } => {
                assert_eq!(common.ddl.as_deref(), Some("s.sql"));
                assert_eq!(common.jobs, 4);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["extract", "q.sql", "--jobs", "8"]).unwrap();
        match cmd {
            Command::Extract { common, .. } => assert_eq!(common.jobs, 8),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["extract", "q.sql", "--jobs", "lots"]).is_err());
        assert!(parse(&["session", "stray.sql"]).is_err());
    }

    #[test]
    fn parses_lenient_and_diagnostics_json() {
        let cmd =
            parse(&["extract", "q.sql", "--lenient", "--diagnostics-json", "diags.json"]).unwrap();
        match cmd {
            Command::Extract { diagnostics_json, common, .. } => {
                assert!(common.lenient);
                assert_eq!(diagnostics_json.as_deref(), Some("diags.json"));
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["session", "--lenient"]).unwrap();
        match cmd {
            Command::Session { common } => assert!(common.lenient),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_serve() {
        let cmd = parse(&["serve"]).unwrap();
        match cmd {
            Command::Serve { addr, verbose, slow_ms, load_snapshot, common } => {
                assert_eq!(addr, "127.0.0.1:7117");
                assert_eq!(common.jobs, 0);
                assert!(!verbose);
                assert_eq!(slow_ms, None);
                assert_eq!(load_snapshot, None);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["serve", "--addr", "0.0.0.0:9999", "--jobs", "4", "--lenient"]).unwrap();
        match cmd {
            Command::Serve { addr, common, .. } => {
                assert_eq!(addr, "0.0.0.0:9999");
                assert_eq!(common.jobs, 4);
                assert!(common.lenient);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "stray.sql"]).is_err());
    }

    #[test]
    fn parses_serve_observability_flags() {
        let cmd = parse(&["serve", "--verbose", "--slow-ms", "250"]).unwrap();
        match cmd {
            Command::Serve { verbose, slow_ms, .. } => {
                assert!(verbose);
                assert_eq!(slow_ms, Some(250));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "--slow-ms", "soon"]).is_err());
        assert!(parse(&["serve", "--slow-ms"]).is_err());
    }

    #[test]
    fn parses_client_ops() {
        for (op_name, expected) in [
            ("ping", ClientOp::Ping),
            ("report", ClientOp::Report),
            ("stats", ClientOp::Stats),
            ("diagnostics", ClientOp::Diagnostics),
            ("metrics", ClientOp::Metrics),
            ("refresh", ClientOp::Refresh),
            ("shutdown", ClientOp::Shutdown),
        ] {
            let cmd = parse(&["client", "127.0.0.1:7117", op_name]).unwrap();
            match cmd {
                Command::Client { addr, op, pretty } => {
                    assert_eq!(addr, "127.0.0.1:7117");
                    assert_eq!(op, expected);
                    assert!(!pretty);
                }
                other => panic!("{other:?}"),
            }
        }
        let cmd = parse(&["client", "h:1", "ingest", "more.sql"]).unwrap();
        assert!(
            matches!(cmd, Command::Client { op: ClientOp::Ingest { file, dialect: None }, .. } if file == "more.sql")
        );
        let cmd = parse(&["client", "h:1", "drop", "v1,V2"]).unwrap();
        assert!(
            matches!(cmd, Command::Client { op: ClientOp::Drop { names }, .. } if names == vec!["v1", "v2"])
        );
        let cmd = parse(&["client", "h:1", "metrics", "--pretty"]).unwrap();
        assert!(matches!(cmd, Command::Client { op: ClientOp::Metrics, pretty: true, .. }));
    }

    #[test]
    fn parses_client_query_with_flags() {
        let cmd = parse(&[
            "client",
            "127.0.0.1:7117",
            "query",
            "web.page,web.cid",
            "--direction",
            "up",
            "--depth",
            "2",
            "--edge-kind",
            "contribute",
            "--table-level",
            "--to",
            "info.wreg",
        ])
        .unwrap();
        match cmd {
            Command::Client {
                op: ClientOp::Query { origins, upstream, depth, edge_kind, table_level, to },
                ..
            } => {
                assert_eq!(origins, vec!["web.page", "web.cid"]);
                assert!(upstream);
                assert_eq!(depth, Some(2));
                assert_eq!(edge_kind.as_deref(), Some("contribute"));
                assert!(table_level);
                assert_eq!(to, Some(("info".into(), "wreg".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn client_error_cases() {
        assert!(parse(&["client", "127.0.0.1:7117"]).is_err());
        assert!(parse(&["client", "h:1", "teleport"]).is_err());
        assert!(parse(&["client", "h:1", "ping", "extra"]).is_err());
        assert!(parse(&["client", "h:1", "ingest"]).is_err());
        assert!(parse(&["client", "h:1", "drop", ","]).is_err());
        assert!(parse(&[
            "client",
            "h:1",
            "query",
            "t.c",
            "--edge-kind",
            "contribute",
            "--edge-kind",
            "reference"
        ])
        .is_err());
    }

    #[test]
    fn parses_dialect_flag() {
        // Unset everywhere by default.
        let cmd = parse(&["extract", "q.sql"]).unwrap();
        match cmd {
            Command::Extract { common, .. } => assert_eq!(common.dialect, None),
            other => panic!("{other:?}"),
        }
        // Case-insensitive names on every dialect-aware subcommand.
        for (value, expected) in [
            ("ansi", DialectKind::Ansi),
            ("Postgres", DialectKind::Postgres),
            ("SNOWFLAKE", DialectKind::Snowflake),
            ("bigquery", DialectKind::BigQuery),
            ("tsql", DialectKind::TSql),
        ] {
            let cmd = parse(&["extract", "q.sql", "--dialect", value]).unwrap();
            match cmd {
                Command::Extract { common, .. } => assert_eq!(common.dialect, Some(expected)),
                other => panic!("{other:?}"),
            }
        }
        let cmd = parse(&["session", "--dialect", "tsql"]).unwrap();
        match cmd {
            Command::Session { common } => assert_eq!(common.dialect, Some(DialectKind::TSql)),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["serve", "--dialect", "bigquery"]).unwrap();
        match cmd {
            Command::Serve { common, .. } => {
                assert_eq!(common.dialect, Some(DialectKind::BigQuery))
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["client", "h:1", "ingest", "q.sql", "--dialect", "snowflake"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Client {
                op: ClientOp::Ingest { dialect: Some(DialectKind::Snowflake), .. },
                ..
            }
        ));
        assert!(parse(&["extract", "q.sql", "--dialect", "oracle"]).is_err());
        assert!(parse(&["extract", "q.sql", "--dialect"]).is_err());
    }

    #[test]
    fn parses_snapshot_flags() {
        let cmd = parse(&["extract", "q.sql", "--save-snapshot", "state.lxsn"]).unwrap();
        match cmd {
            Command::Extract { save_snapshot, .. } => {
                assert_eq!(save_snapshot.as_deref(), Some("state.lxsn"));
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["serve", "--load-snapshot", "state.lxsn", "--jobs", "2"]).unwrap();
        match cmd {
            Command::Serve { load_snapshot, common, .. } => {
                assert_eq!(load_snapshot.as_deref(), Some("state.lxsn"));
                assert_eq!(common.jobs, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["extract", "q.sql", "--save-snapshot"]).is_err());
        assert!(parse(&["serve", "--load-snapshot"]).is_err());
    }

    #[test]
    fn explain_requires_ddl() {
        assert!(parse(&["explain", "q.sql"]).is_err());
        assert!(parse(&["explain", "q.sql", "--ddl", "s.sql"]).is_ok());
    }

    #[test]
    fn error_cases() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["extract"]).is_err());
        assert!(parse(&["extract", "a.sql", "b.sql"]).is_err());
        assert!(parse(&["extract", "q.sql", "--bogus"]).is_err());
        assert!(parse(&["extract", "q.sql", "--json"]).is_err());
        assert!(parse(&["impact", "nodot", "q.sql"]).is_err());
    }

    #[test]
    fn column_spec_parsing() {
        assert_eq!(parse_column("Web.Page").unwrap(), ("web".into(), "page".into()));
        assert_eq!(
            parse_column("schema.table.col").unwrap(),
            ("schema.table".into(), "col".into())
        );
        assert!(parse_column("nodot").is_err());
        assert!(parse_column(".x").is_err());
        assert!(parse_column("x.").is_err());
    }
}
