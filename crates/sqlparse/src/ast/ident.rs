//! Identifiers and dotted object names.

use crate::span::Span;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL identifier.
///
/// Unquoted identifiers are case-normalised to lower case at parse time
/// (Postgres semantics), so `Name`, `NAME`, and `name` compare equal.
/// Quoted identifiers preserve their exact spelling.
///
/// Every parsed identifier carries the [`Span`] of the token it came from,
/// so diagnostics anywhere in the pipeline can point back at the source.
/// The span is *location metadata*, not identity: equality, ordering, and
/// hashing deliberately ignore it, so a hand-built `Ident::new("x")`
/// matches a parsed `x` regardless of where it appeared.
#[derive(Debug, Clone)]
pub struct Ident {
    /// The identifier text (already lower-cased when unquoted).
    pub value: String,
    /// Whether the identifier was written with quotes.
    pub quoted: bool,
    /// Where the identifier appeared in the source (default for synthetic
    /// identifiers).
    pub span: Span,
}

impl Ident {
    /// An unquoted identifier; the value is lower-cased.
    pub fn new(value: impl AsRef<str>) -> Self {
        Ident { value: value.as_ref().to_lowercase(), quoted: false, span: Span::default() }
    }

    /// A quoted identifier; the value is preserved verbatim.
    pub fn quoted(value: impl Into<String>) -> Self {
        Ident { value: value.into(), quoted: true, span: Span::default() }
    }

    /// Attach the source span the identifier was parsed from.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }
}

// Span is excluded from identity: two idents are the same name no matter
// where they were written. Manual impls keep Eq/Ord/Hash consistent.
impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value && self.quoted == other.quoted
    }
}

impl Eq for Ident {}

impl PartialOrd for Ident {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ident {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value.cmp(&other.value).then_with(|| self.quoted.cmp(&other.quoted))
    }
}

impl Hash for Ident {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.value.hash(state);
        self.quoted.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.quoted {
            write!(f, "\"{}\"", self.value.replace('"', "\"\""))
        } else {
            f.write_str(&self.value)
        }
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

/// A possibly-qualified object name such as `schema.table` or `table`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectName(pub Vec<Ident>);

impl ObjectName {
    /// A single-part name.
    pub fn single(name: impl AsRef<str>) -> Self {
        ObjectName(vec![Ident::new(name)])
    }

    /// The last (unqualified) part of the name.
    pub fn base_name(&self) -> &str {
        self.0.last().map(|i| i.value.as_str()).unwrap_or("")
    }

    /// The full dotted name as a lowercase string, e.g. `public.orders`.
    pub fn full_name(&self) -> String {
        self.0.iter().map(|i| i.value.as_str()).collect::<Vec<_>>().join(".")
    }

    /// The source span covering the whole dotted name (the union of its
    /// parts' spans; default when the name is synthetic).
    pub fn span(&self) -> Span {
        let mut parts = self.0.iter();
        let Some(first) = parts.next() else { return Span::default() };
        parts.fold(first.span, |acc, part| acc.union(&part.span))
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

impl From<&str> for ObjectName {
    fn from(s: &str) -> Self {
        ObjectName(s.split('.').map(Ident::new).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Location;

    #[test]
    fn unquoted_ident_lowercases() {
        assert_eq!(Ident::new("CuStOmErS").value, "customers");
        assert!(!Ident::new("x").quoted);
    }

    #[test]
    fn quoted_ident_preserves_case() {
        let i = Ident::quoted("MixedCase");
        assert_eq!(i.value, "MixedCase");
        assert!(i.quoted);
    }

    #[test]
    fn display_escapes_embedded_quotes() {
        let i = Ident::quoted(r#"say "hi""#);
        assert_eq!(i.to_string(), r#""say ""hi""""#);
    }

    #[test]
    fn object_name_parts() {
        let n: ObjectName = "public.Orders".into();
        assert_eq!(n.base_name(), "orders");
        assert_eq!(n.full_name(), "public.orders");
        assert_eq!(n.to_string(), "public.orders");
    }

    #[test]
    fn idents_compare_case_insensitively_when_unquoted() {
        assert_eq!(Ident::new("ABC"), Ident::new("abc"));
        assert_ne!(Ident::quoted("ABC"), Ident::new("abc"));
    }

    #[test]
    fn span_is_metadata_not_identity() {
        let at = Ident::new("x").with_span(Span::new(7, 8, Location::new(2, 3)));
        let bare = Ident::new("x");
        assert_eq!(at, bare);
        assert_eq!(at.cmp(&bare), Ordering::Equal);
        let mut set = std::collections::HashSet::new();
        set.insert(at.clone());
        assert!(set.contains(&bare));
        assert_eq!(at.span.start, 7);
    }

    #[test]
    fn object_name_span_unions_parts() {
        let name = ObjectName(vec![
            Ident::new("public").with_span(Span::new(0, 6, Location::new(1, 1))),
            Ident::new("orders").with_span(Span::new(7, 13, Location::new(1, 8))),
        ]);
        let span = name.span();
        assert_eq!((span.start, span.end), (0, 13));
        assert_eq!(ObjectName::single("t").span(), Span::default());
    }
}
