//! Identifiers and dotted object names.

use std::fmt;

/// A single SQL identifier.
///
/// Unquoted identifiers are case-normalised to lower case at parse time
/// (Postgres semantics), so `Name`, `NAME`, and `name` compare equal.
/// Quoted identifiers preserve their exact spelling.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ident {
    /// The identifier text (already lower-cased when unquoted).
    pub value: String,
    /// Whether the identifier was written with quotes.
    pub quoted: bool,
}

impl Ident {
    /// An unquoted identifier; the value is lower-cased.
    pub fn new(value: impl AsRef<str>) -> Self {
        Ident { value: value.as_ref().to_lowercase(), quoted: false }
    }

    /// A quoted identifier; the value is preserved verbatim.
    pub fn quoted(value: impl Into<String>) -> Self {
        Ident { value: value.into(), quoted: true }
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.quoted {
            write!(f, "\"{}\"", self.value.replace('"', "\"\""))
        } else {
            f.write_str(&self.value)
        }
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

/// A possibly-qualified object name such as `schema.table` or `table`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectName(pub Vec<Ident>);

impl ObjectName {
    /// A single-part name.
    pub fn single(name: impl AsRef<str>) -> Self {
        ObjectName(vec![Ident::new(name)])
    }

    /// The last (unqualified) part of the name.
    pub fn base_name(&self) -> &str {
        self.0.last().map(|i| i.value.as_str()).unwrap_or("")
    }

    /// The full dotted name as a lowercase string, e.g. `public.orders`.
    pub fn full_name(&self) -> String {
        self.0.iter().map(|i| i.value.as_str()).collect::<Vec<_>>().join(".")
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, part) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{part}")?;
        }
        Ok(())
    }
}

impl From<&str> for ObjectName {
    fn from(s: &str) -> Self {
        ObjectName(s.split('.').map(Ident::new).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unquoted_ident_lowercases() {
        assert_eq!(Ident::new("CuStOmErS").value, "customers");
        assert!(!Ident::new("x").quoted);
    }

    #[test]
    fn quoted_ident_preserves_case() {
        let i = Ident::quoted("MixedCase");
        assert_eq!(i.value, "MixedCase");
        assert!(i.quoted);
    }

    #[test]
    fn display_escapes_embedded_quotes() {
        let i = Ident::quoted(r#"say "hi""#);
        assert_eq!(i.to_string(), r#""say ""hi""""#);
    }

    #[test]
    fn object_name_parts() {
        let n: ObjectName = "public.Orders".into();
        assert_eq!(n.base_name(), "orders");
        assert_eq!(n.full_name(), "public.orders");
        assert_eq!(n.to_string(), "public.orders");
    }

    #[test]
    fn idents_compare_case_insensitively_when_unquoted() {
        assert_eq!(Ident::new("ABC"), Ident::new("abc"));
        assert_ne!(Ident::quoted("ABC"), Ident::new("abc"));
    }
}
