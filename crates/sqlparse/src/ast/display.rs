//! `Display` implementations rendering the AST back to SQL text.
//!
//! The printer produces canonical SQL that re-parses to an identical tree;
//! this round-trip property is exercised by the proptest suite in
//! `tests/roundtrip.rs`.

use super::expr::*;
use super::query::*;
use super::stmt::*;
use std::fmt;

fn comma_sep<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => f.write_str(n),
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Boolean(true) => f.write_str("TRUE"),
            Literal::Boolean(false) => f.write_str("FALSE"),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.params.is_empty() {
            f.write_str("(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{p}")?;
            }
            f.write_str(")")?;
        }
        if let Some(suffix) = &self.suffix {
            write!(f, " {suffix}")?;
        }
        Ok(())
    }
}

impl fmt::Display for FunctionArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionArg::Expr(e) => write!(f, "{e}"),
            FunctionArg::Wildcard => f.write_str("*"),
            FunctionArg::QualifiedWildcard(name) => write!(f, "{name}.*"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        comma_sep(f, &self.args)?;
        f.write_str(")")?;
        if let Some(filter) = &self.filter {
            write!(f, " FILTER (WHERE {filter})")?;
        }
        if let Some(over) = &self.over {
            write!(f, " OVER ({over})")?;
        }
        Ok(())
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut need_space = false;
        if !self.partition_by.is_empty() {
            f.write_str("PARTITION BY ")?;
            comma_sep(f, &self.partition_by)?;
            need_space = true;
        }
        if !self.order_by.is_empty() {
            if need_space {
                f.write_str(" ")?;
            }
            f.write_str("ORDER BY ")?;
            comma_sep(f, &self.order_by)?;
            need_space = true;
        }
        if let Some(frame) = &self.frame {
            if need_space {
                f.write_str(" ")?;
            }
            write!(f, "{frame}")?;
        }
        Ok(())
    }
}

impl fmt::Display for WindowFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let units = match self.units {
            FrameUnits::Rows => "ROWS",
            FrameUnits::Range => "RANGE",
        };
        match &self.end {
            Some(end) => write!(f, "{units} BETWEEN {} AND {end}", self.start),
            None => write!(f, "{units} {}", self.start),
        }
    }
}

impl fmt::Display for FrameBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameBound::CurrentRow => f.write_str("CURRENT ROW"),
            FrameBound::Preceding(None) => f.write_str("UNBOUNDED PRECEDING"),
            FrameBound::Preceding(Some(n)) => write!(f, "{n} PRECEDING"),
            FrameBound::Following(None) => f.write_str("UNBOUNDED FOLLOWING"),
            FrameBound::Following(Some(n)) => write!(f, "{n} FOLLOWING"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Identifier(i) => write!(f, "{i}"),
            Expr::CompoundIdentifier(parts) => {
                for (i, part) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    write!(f, "{part}")?;
                }
                Ok(())
            }
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Placeholder(p) => f.write_str(p),
            Expr::BinaryOp { left, op, right } => write!(f, "{left} {} {right}", op.as_str()),
            Expr::UnaryOp { op, expr } => match op {
                UnaryOperator::Not => write!(f, "NOT {expr}"),
                UnaryOperator::Plus => write!(f, "+{expr}"),
                UnaryOperator::Minus => write!(f, "-{expr}"),
            },
            Expr::Nested(e) => write!(f, "({e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::IsDistinctFrom { left, right, negated } => {
                write!(f, "{left} IS {}DISTINCT FROM {right}", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                comma_sep(f, list)?;
                f.write_str(")")
            }
            Expr::InSubquery { expr, subquery, negated } => {
                write!(f, "{expr} {}IN ({subquery})", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, negated, low, high } => {
                write!(f, "{expr} {}BETWEEN {low} AND {high}", if *negated { "NOT " } else { "" })
            }
            Expr::Like { expr, negated, pattern, case_insensitive } => write!(
                f,
                "{expr} {}{} {pattern}",
                if *negated { "NOT " } else { "" },
                if *case_insensitive { "ILIKE" } else { "LIKE" }
            ),
            Expr::Case { operand, conditions, results, else_result } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (c, r) in conditions.iter().zip(results.iter()) {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Cast { expr, data_type, postgres_style } => {
                if *postgres_style {
                    write!(f, "{expr}::{data_type}")
                } else {
                    write!(f, "CAST({expr} AS {data_type})")
                }
            }
            Expr::Extract { field, expr } => write!(f, "EXTRACT({field} FROM {expr})"),
            Expr::Substring { expr, from, for_len } => {
                write!(f, "SUBSTRING({expr}")?;
                if let Some(from) = from {
                    write!(f, " FROM {from}")?;
                }
                if let Some(len) = for_len {
                    write!(f, " FOR {len}")?;
                }
                f.write_str(")")
            }
            Expr::Trim { expr, side, what } => {
                f.write_str("TRIM(")?;
                let side_str = match side {
                    TrimSide::Both => "BOTH",
                    TrimSide::Leading => "LEADING",
                    TrimSide::Trailing => "TRAILING",
                };
                match what {
                    Some(what) => write!(f, "{side_str} {what} FROM {expr})"),
                    None if *side != TrimSide::Both => write!(f, "{side_str} FROM {expr})"),
                    None => write!(f, "{expr})"),
                }
            }
            Expr::Position { expr, in_expr } => write!(f, "POSITION({expr} IN {in_expr})"),
            Expr::Interval { value, unit } => {
                write!(f, "INTERVAL {value}")?;
                if let Some(unit) = unit {
                    write!(f, " {unit}")?;
                }
                Ok(())
            }
            Expr::Function(func) => write!(f, "{func}"),
            Expr::Exists { subquery, negated } => {
                write!(f, "{}EXISTS ({subquery})", if *negated { "NOT " } else { "" })
            }
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::QuantifiedComparison { expr, op, all, subquery } => write!(
                f,
                "{expr} {} {}({subquery})",
                op.as_str(),
                if *all { "ALL " } else { "ANY " }
            ),
            Expr::Tuple(items) => {
                f.write_str("(")?;
                comma_sep(f, items)?;
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(with) = &self.with {
            write!(f, "{with} ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            comma_sep(f, &self.order_by)?;
        }
        if let Some(limit) = &self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(offset) = &self.offset {
            write!(f, " OFFSET {offset}")?;
        }
        Ok(())
    }
}

impl fmt::Display for With {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WITH {}", if self.recursive { "RECURSIVE " } else { "" })?;
        comma_sep(f, &self.ctes)
    }
}

impl fmt::Display for Cte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.alias.name)?;
        if !self.alias.columns.is_empty() {
            f.write_str("(")?;
            comma_sep(f, &self.alias.columns)?;
            f.write_str(")")?;
        }
        write!(f, " AS ({})", self.query)
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::Query(q) => write!(f, "({q})"),
            SetExpr::SetOperation { op, all, left, right } => {
                write!(f, "{left} {}{} {right}", op.as_str(), if *all { " ALL" } else { "" })
            }
            SetExpr::Values(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Values {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("VALUES ")?;
        for (i, row) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str("(")?;
            comma_sep(f, row)?;
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        match &self.distinct {
            Some(Distinct::Distinct) => f.write_str("DISTINCT ")?,
            Some(Distinct::On(exprs)) => {
                f.write_str("DISTINCT ON (")?;
                comma_sep(f, exprs)?;
                f.write_str(") ")?;
            }
            None => {}
        }
        if let Some(top) = &self.top {
            write!(f, "TOP {top} ")?;
        }
        comma_sep(f, &self.projection)?;
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            comma_sep(f, &self.from)?;
        }
        if let Some(selection) = &self.selection {
            write!(f, " WHERE {selection}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            comma_sep(f, &self.group_by)?;
        }
        if let Some(having) = &self.having {
            write!(f, " HAVING {having}")?;
        }
        if let Some(qualify) = &self.qualify {
            write!(f, " QUALIFY {qualify}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::UnnamedExpr(e) => write!(f, "{e}"),
            SelectItem::ExprWithAlias { expr, alias } => write!(f, "{expr} AS {alias}"),
            SelectItem::QualifiedWildcard(name) => write!(f, "{name}.*"),
            SelectItem::Wildcard => f.write_str("*"),
        }
    }
}

impl fmt::Display for TableAlias {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.columns.is_empty() {
            f.write_str("(")?;
            comma_sep(f, &self.columns)?;
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableWithJoins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        for join in &self.joins {
            write!(f, "{join}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
            TableFactor::Derived { lateral, subquery, alias } => {
                if *lateral {
                    f.write_str("LATERAL ")?;
                }
                write!(f, "({subquery})")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                Ok(())
            }
            TableFactor::NestedJoin(twj) => write!(f, "({twj})"),
        }
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn suffix(c: &JoinConstraint) -> String {
            match c {
                JoinConstraint::On(e) => format!(" ON {e}"),
                JoinConstraint::Using(cols) => {
                    let names: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                    format!(" USING ({})", names.join(", "))
                }
                JoinConstraint::Natural | JoinConstraint::None => String::new(),
            }
        }
        fn prefix(c: &JoinConstraint) -> &'static str {
            match c {
                JoinConstraint::Natural => "NATURAL ",
                _ => "",
            }
        }
        match &self.join_operator {
            JoinOperator::Inner(c) => {
                write!(f, " {}JOIN {}{}", prefix(c), self.relation, suffix(c))
            }
            JoinOperator::LeftOuter(c) => {
                write!(f, " {}LEFT JOIN {}{}", prefix(c), self.relation, suffix(c))
            }
            JoinOperator::RightOuter(c) => {
                write!(f, " {}RIGHT JOIN {}{}", prefix(c), self.relation, suffix(c))
            }
            JoinOperator::FullOuter(c) => {
                write!(f, " {}FULL JOIN {}{}", prefix(c), self.relation, suffix(c))
            }
            JoinOperator::CrossJoin => write!(f, " CROSS JOIN {}", self.relation),
        }
    }
}

impl fmt::Display for OrderByExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        match self.asc {
            Some(true) => f.write_str(" ASC")?,
            Some(false) => f.write_str(" DESC")?,
            None => {}
        }
        match self.nulls_first {
            Some(true) => f.write_str(" NULLS FIRST")?,
            Some(false) => f.write_str(" NULLS LAST")?,
            None => {}
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Noise(noise) => {
                if noise.text.is_empty() {
                    f.write_str(noise.kind.as_str())
                } else {
                    f.write_str(&noise.text)
                }
            }
            Statement::Merge(merge) => {
                if merge.text.is_empty() {
                    write!(f, "MERGE INTO {}", merge.target)
                } else {
                    f.write_str(&merge.text)
                }
            }
            Statement::CreateView {
                or_replace,
                materialized,
                temporary,
                if_not_exists,
                name,
                columns,
                query,
            } => {
                f.write_str("CREATE ")?;
                if *or_replace {
                    f.write_str("OR REPLACE ")?;
                }
                if *temporary {
                    f.write_str("TEMPORARY ")?;
                }
                if *materialized {
                    f.write_str("MATERIALIZED ")?;
                }
                f.write_str("VIEW ")?;
                if *if_not_exists {
                    f.write_str("IF NOT EXISTS ")?;
                }
                write!(f, "{name}")?;
                if !columns.is_empty() {
                    f.write_str("(")?;
                    comma_sep(f, columns)?;
                    f.write_str(")")?;
                }
                write!(f, " AS {query}")
            }
            Statement::CreateTable {
                or_replace,
                temporary,
                if_not_exists,
                name,
                columns,
                constraints,
                query,
            } => {
                f.write_str("CREATE ")?;
                if *or_replace {
                    f.write_str("OR REPLACE ")?;
                }
                if *temporary {
                    f.write_str("TEMPORARY ")?;
                }
                f.write_str("TABLE ")?;
                if *if_not_exists {
                    f.write_str("IF NOT EXISTS ")?;
                }
                write!(f, "{name}")?;
                if !columns.is_empty() || !constraints.is_empty() {
                    f.write_str(" (")?;
                    let mut first = true;
                    for col in columns {
                        if !first {
                            f.write_str(", ")?;
                        }
                        first = false;
                        write!(f, "{col}")?;
                    }
                    for c in constraints {
                        if !first {
                            f.write_str(", ")?;
                        }
                        first = false;
                        write!(f, "{c}")?;
                    }
                    f.write_str(")")?;
                }
                if let Some(query) = query {
                    write!(f, " AS {query}")?;
                }
                Ok(())
            }
            Statement::Insert { table, columns, source } => {
                write!(f, "INSERT INTO {table}")?;
                if !columns.is_empty() {
                    f.write_str(" (")?;
                    comma_sep(f, columns)?;
                    f.write_str(")")?;
                }
                write!(f, " {source}")
            }
            Statement::Drop { object_type, if_exists, names } => {
                let kind = match object_type {
                    ObjectType::Table => "TABLE",
                    ObjectType::View => "VIEW",
                    ObjectType::MaterializedView => "MATERIALIZED VIEW",
                };
                write!(f, "DROP {kind} ")?;
                if *if_exists {
                    f.write_str("IF EXISTS ")?;
                }
                comma_sep(f, names)
            }
            Statement::Update { table, alias, assignments, from, selection } => {
                write!(f, "UPDATE {table}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                f.write_str(" SET ")?;
                comma_sep(f, assignments)?;
                if !from.is_empty() {
                    f.write_str(" FROM ")?;
                    comma_sep(f, from)?;
                }
                if let Some(selection) = selection {
                    write!(f, " WHERE {selection}")?;
                }
                Ok(())
            }
            Statement::Delete { table, alias, using, selection } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(alias) = alias {
                    write!(f, " AS {alias}")?;
                }
                if !using.is_empty() {
                    f.write_str(" USING ")?;
                    comma_sep(f, using)?;
                }
                if let Some(selection) = selection {
                    write!(f, " WHERE {selection}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.column, self.value)
    }
}

impl fmt::Display for ColumnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)?;
        for opt in &self.options {
            write!(f, " {opt}")?;
        }
        Ok(())
    }
}

impl fmt::Display for ColumnOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnOption::NotNull => f.write_str("NOT NULL"),
            ColumnOption::Null => f.write_str("NULL"),
            ColumnOption::PrimaryKey => f.write_str("PRIMARY KEY"),
            ColumnOption::Unique => f.write_str("UNIQUE"),
            ColumnOption::Default(e) => write!(f, "DEFAULT {e}"),
            ColumnOption::References { table, column } => {
                write!(f, "REFERENCES {table}")?;
                if let Some(column) = column {
                    write!(f, "({column})")?;
                }
                Ok(())
            }
            ColumnOption::Check(e) => write!(f, "CHECK ({e})"),
        }
    }
}

impl fmt::Display for TableConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableConstraint::PrimaryKey(cols) => {
                f.write_str("PRIMARY KEY (")?;
                comma_sep(f, cols)?;
                f.write_str(")")
            }
            TableConstraint::Unique(cols) => {
                f.write_str("UNIQUE (")?;
                comma_sep(f, cols)?;
                f.write_str(")")
            }
            TableConstraint::ForeignKey { columns, foreign_table, referred_columns } => {
                f.write_str("FOREIGN KEY (")?;
                comma_sep(f, columns)?;
                write!(f, ") REFERENCES {foreign_table}")?;
                if !referred_columns.is_empty() {
                    f.write_str(" (")?;
                    comma_sep(f, referred_columns)?;
                    f.write_str(")")?;
                }
                Ok(())
            }
            TableConstraint::Check(e) => write!(f, "CHECK ({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::ident::Ident;
    use super::*;

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Number("3.14".into()).to_string(), "3.14");
        assert_eq!(Literal::String("it's".into()).to_string(), "'it''s'");
        assert_eq!(Literal::Boolean(true).to_string(), "TRUE");
        assert_eq!(Literal::Null.to_string(), "NULL");
    }

    #[test]
    fn case_display() {
        let e = Expr::Case {
            operand: None,
            conditions: vec![Expr::col("a").eq(Expr::Literal(Literal::Number("1".into())))],
            results: vec![Expr::Literal(Literal::String("one".into()))],
            else_result: Some(Box::new(Expr::Literal(Literal::Null))),
        };
        assert_eq!(e.to_string(), "CASE WHEN a = 1 THEN 'one' ELSE NULL END");
    }

    #[test]
    fn extract_display() {
        let e = Expr::Extract { field: "year".into(), expr: Box::new(Expr::qcol("w", "date")) };
        assert_eq!(e.to_string(), "EXTRACT(year FROM w.date)");
    }

    #[test]
    fn data_type_display() {
        let t = DataType { name: "numeric".into(), params: vec![10, 2], suffix: None };
        assert_eq!(t.to_string(), "numeric(10, 2)");
        let t = DataType {
            name: "timestamp".into(),
            params: vec![],
            suffix: Some("with time zone".into()),
        };
        assert_eq!(t.to_string(), "timestamp with time zone");
    }

    #[test]
    fn select_item_display() {
        assert_eq!(SelectItem::Wildcard.to_string(), "*");
        assert_eq!(SelectItem::QualifiedWildcard("w".into()).to_string(), "w.*");
        assert_eq!(
            SelectItem::ExprWithAlias { expr: Expr::qcol("c", "cid"), alias: Ident::new("wcid") }
                .to_string(),
            "c.cid AS wcid"
        );
    }

    #[test]
    fn window_display() {
        let func = Function {
            name: "row_number".into(),
            args: vec![],
            distinct: false,
            filter: None,
            over: Some(WindowSpec {
                partition_by: vec![Expr::col("dept")],
                order_by: vec![OrderByExpr {
                    expr: Expr::col("salary"),
                    asc: Some(false),
                    nulls_first: None,
                }],
                frame: Some(WindowFrame {
                    units: FrameUnits::Rows,
                    start: FrameBound::Preceding(None),
                    end: Some(FrameBound::CurrentRow),
                }),
            }),
        };
        assert_eq!(
            func.to_string(),
            "row_number() OVER (PARTITION BY dept ORDER BY salary DESC ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW)"
        );
    }
}
