//! Scalar expressions.

use super::ident::{Ident, ObjectName};
use super::query::{OrderByExpr, Query};

/// A literal value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// Numeric literal, kept verbatim to avoid float-precision surprises.
    Number(String),
    /// String literal (escapes already folded).
    String(String),
    /// `TRUE` / `FALSE`.
    Boolean(bool),
    /// `NULL`.
    Null,
}

/// Binary operators in order of appearance in the precedence table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOperator {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Concat,
    Caret,
}

impl BinaryOperator {
    /// The SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        use BinaryOperator::*;
        match self {
            Or => "OR",
            And => "AND",
            Eq => "=",
            NotEq => "<>",
            Lt => "<",
            Gt => ">",
            LtEq => "<=",
            GtEq => ">=",
            Plus => "+",
            Minus => "-",
            Multiply => "*",
            Divide => "/",
            Modulo => "%",
            Concat => "||",
            Caret => "^",
        }
    }
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOperator {
    Plus,
    Minus,
    Not,
}

/// A (simplified) SQL data type, sufficient for DDL loading and `CAST`.
///
/// `name` holds the full lower-case type phrase (`"integer"`, `"character
/// varying"`, `"double precision"`), `params` any parenthesised lengths, and
/// `suffix` trailing modifiers such as `"with time zone"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DataType {
    /// Lower-case type name phrase.
    pub name: String,
    /// Optional length/precision/scale parameters.
    pub params: Vec<u64>,
    /// Optional trailing modifier phrase (lower case).
    pub suffix: Option<String>,
}

impl DataType {
    /// A bare type with no parameters.
    pub fn named(name: impl Into<String>) -> Self {
        DataType { name: name.into(), params: Vec::new(), suffix: None }
    }
}

/// Which side(s) `TRIM` strips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TrimSide {
    Both,
    Leading,
    Trailing,
}

/// Window frame units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FrameUnits {
    Rows,
    Range,
}

/// One bound of a window frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FrameBound {
    /// `CURRENT ROW`
    CurrentRow,
    /// `<n> PRECEDING`, or `UNBOUNDED PRECEDING` when `None`.
    Preceding(Option<u64>),
    /// `<n> FOLLOWING`, or `UNBOUNDED FOLLOWING` when `None`.
    Following(Option<u64>),
}

/// A window frame clause (`ROWS BETWEEN ... AND ...`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowFrame {
    /// `ROWS` or `RANGE`.
    pub units: FrameUnits,
    /// The starting bound.
    pub start: FrameBound,
    /// The ending bound when the `BETWEEN` form is used.
    pub end: Option<FrameBound>,
}

/// An `OVER (...)` window specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct WindowSpec {
    /// `PARTITION BY` expressions.
    pub partition_by: Vec<Expr>,
    /// `ORDER BY` expressions.
    pub order_by: Vec<OrderByExpr>,
    /// Optional frame clause.
    pub frame: Option<WindowFrame>,
}

/// One argument in a function call.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FunctionArg {
    /// An ordinary expression argument.
    Expr(Expr),
    /// `*` as in `COUNT(*)`.
    Wildcard,
    /// `t.*` as in `COUNT(t.*)`.
    QualifiedWildcard(ObjectName),
}

/// A function call, possibly with `DISTINCT`, `FILTER`, and a window.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Function {
    /// The function name (possibly schema-qualified).
    pub name: ObjectName,
    /// Call arguments in order.
    pub args: Vec<FunctionArg>,
    /// `DISTINCT` inside the call, e.g. `COUNT(DISTINCT x)`.
    pub distinct: bool,
    /// `FILTER (WHERE ...)` clause.
    pub filter: Option<Box<Expr>>,
    /// `OVER (...)` window specification.
    pub over: Option<WindowSpec>,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A bare column reference (`name`).
    Identifier(Ident),
    /// A qualified reference (`t.name`, `schema.t.name`).
    CompoundIdentifier(Vec<Ident>),
    /// A literal value.
    Literal(Literal),
    /// A `?` / `$n` placeholder.
    Placeholder(String),
    /// Binary operation.
    BinaryOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOperator,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Prefix unary operation.
    UnaryOp {
        /// Operator.
        op: UnaryOperator,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A parenthesised sub-expression, preserved for faithful printing.
    Nested(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `left IS [NOT] DISTINCT FROM right` (null-safe comparison).
    IsDistinctFrom {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
        /// `IS NOT DISTINCT FROM` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// The tested expression.
        expr: Box<Expr>,
        /// The subquery.
        subquery: Box<Query>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// `expr [NOT] LIKE/ILIKE pattern`.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// `NOT LIKE` when true.
        negated: bool,
        /// The pattern.
        pattern: Box<Expr>,
        /// `ILIKE` when true.
        case_insensitive: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional operand for the simple-CASE form.
        operand: Option<Box<Expr>>,
        /// `WHEN` conditions.
        conditions: Vec<Expr>,
        /// `THEN` results, parallel to `conditions`.
        results: Vec<Expr>,
        /// `ELSE` result.
        else_result: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)` or `expr::type`.
    Cast {
        /// The expression being cast.
        expr: Box<Expr>,
        /// Target type.
        data_type: DataType,
        /// Rendered as `expr::type` when true.
        postgres_style: bool,
    },
    /// `EXTRACT(field FROM expr)`.
    Extract {
        /// The field (`year`, `month`, ...), lower case.
        field: String,
        /// The source expression.
        expr: Box<Expr>,
    },
    /// `SUBSTRING(expr [FROM start] [FOR len])`.
    Substring {
        /// The string expression.
        expr: Box<Expr>,
        /// `FROM` start position.
        from: Option<Box<Expr>>,
        /// `FOR` length.
        for_len: Option<Box<Expr>>,
    },
    /// `TRIM([side] [what FROM] expr)`.
    Trim {
        /// The trimmed expression.
        expr: Box<Expr>,
        /// Which side(s) to trim.
        side: TrimSide,
        /// The characters to strip.
        what: Option<Box<Expr>>,
    },
    /// `POSITION(needle IN haystack)`.
    Position {
        /// The searched-for expression.
        expr: Box<Expr>,
        /// The expression searched within.
        in_expr: Box<Expr>,
    },
    /// `INTERVAL '1 day'`-style literal.
    Interval {
        /// The quoted interval body.
        value: Box<Expr>,
        /// Optional trailing unit word (`day`, `month`, ...).
        unit: Option<String>,
    },
    /// A function call.
    Function(Function),
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The subquery.
        subquery: Box<Query>,
        /// `NOT EXISTS` when true.
        negated: bool,
    },
    /// A scalar subquery `(SELECT ...)`.
    Subquery(Box<Query>),
    /// `expr op ANY/SOME/ALL (subquery)`.
    QuantifiedComparison {
        /// Left operand.
        expr: Box<Expr>,
        /// Comparison operator.
        op: BinaryOperator,
        /// `ALL` when true; `ANY`/`SOME` when false.
        all: bool,
        /// The subquery producing comparands.
        subquery: Box<Query>,
    },
    /// A row/tuple constructor `(a, b, c)` with two or more members.
    Tuple(Vec<Expr>),
}

impl Expr {
    /// Convenience: a bare column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Identifier(Ident::new(name))
    }

    /// Convenience: a `table.column` reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::CompoundIdentifier(vec![Ident::new(table), Ident::new(name)])
    }

    /// Convenience: conjunction of two expressions.
    pub fn and(self, other: Expr) -> Expr {
        Expr::BinaryOp { left: Box::new(self), op: BinaryOperator::And, right: Box::new(other) }
    }

    /// Convenience: equality comparison.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::BinaryOp { left: Box::new(self), op: BinaryOperator::Eq, right: Box::new(other) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_shapes() {
        assert_eq!(Expr::col("A"), Expr::Identifier(Ident::new("a")));
        assert_eq!(
            Expr::qcol("T", "C"),
            Expr::CompoundIdentifier(vec![Ident::new("t"), Ident::new("c")])
        );
        let e = Expr::col("a").eq(Expr::col("b")).and(Expr::col("c"));
        match e {
            Expr::BinaryOp { op: BinaryOperator::And, .. } => {}
            other => panic!("expected AND at top, got {other:?}"),
        }
    }

    #[test]
    fn operator_spellings() {
        assert_eq!(BinaryOperator::NotEq.as_str(), "<>");
        assert_eq!(BinaryOperator::Concat.as_str(), "||");
        assert_eq!(BinaryOperator::And.as_str(), "AND");
    }

    #[test]
    fn data_type_named_has_no_params() {
        let t = DataType::named("integer");
        assert!(t.params.is_empty());
        assert!(t.suffix.is_none());
    }
}
