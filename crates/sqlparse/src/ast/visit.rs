//! Lightweight traversal helpers over expressions.
//!
//! The lineage extractor needs two things from an expression: the column
//! references that occur *directly* in it, and the subqueries nested in it
//! (which must be resolved against their own scopes). [`ExprRefs`] gathers
//! both in a single walk without descending into subqueries.

use super::expr::{Expr, Function, FunctionArg};
use super::ident::{Ident, ObjectName};
use super::query::Query;

/// References collected from one expression.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ExprRefs<'a> {
    /// Column references (`Identifier` / `CompoundIdentifier` nodes).
    pub columns: Vec<ColumnRef<'a>>,
    /// `t.*` wildcards inside function calls (`COUNT(t.*)`).
    pub qualified_wildcards: Vec<&'a ObjectName>,
    /// Whether a bare `*` appears inside a function call (`COUNT(*)`).
    pub has_wildcard: bool,
    /// Immediate subqueries (scalar, `IN`, `EXISTS`, quantified).
    pub subqueries: Vec<&'a Query>,
}

/// One column reference: optional qualifier path plus the column identifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnRef<'a> {
    /// Qualifier parts (`["t"]` for `t.c`, `["s", "t"]` for `s.t.c`), empty
    /// for a bare column name.
    pub qualifier: &'a [Ident],
    /// The column identifier.
    pub column: &'a Ident,
}

impl<'a> ColumnRef<'a> {
    /// The last qualifier part, which names the table binding (`t` in
    /// `s.t.c`), if any.
    pub fn table(&self) -> Option<&'a str> {
        self.qualifier.last().map(|i| i.value.as_str())
    }
}

impl<'a> ExprRefs<'a> {
    /// Collect references from a single expression.
    pub fn from_expr(expr: &'a Expr) -> Self {
        let mut refs = ExprRefs::default();
        refs.walk(expr);
        refs
    }

    /// Collect references from several expressions.
    pub fn from_exprs<I: IntoIterator<Item = &'a Expr>>(exprs: I) -> Self {
        let mut refs = ExprRefs::default();
        for e in exprs {
            refs.walk(e);
        }
        refs
    }

    /// Walk one more expression, accumulating into `self`.
    pub fn walk(&mut self, expr: &'a Expr) {
        match expr {
            Expr::Identifier(ident) => {
                self.columns.push(ColumnRef { qualifier: &[], column: ident });
            }
            Expr::CompoundIdentifier(parts) => {
                if let Some((column, qualifier)) = parts.split_last() {
                    self.columns.push(ColumnRef { qualifier, column });
                }
            }
            Expr::Literal(_) | Expr::Placeholder(_) => {}
            Expr::BinaryOp { left, right, .. } => {
                self.walk(left);
                self.walk(right);
            }
            Expr::UnaryOp { expr, .. } | Expr::Nested(expr) => self.walk(expr),
            Expr::IsNull { expr, .. } => self.walk(expr),
            Expr::IsDistinctFrom { left, right, .. } => {
                self.walk(left);
                self.walk(right);
            }
            Expr::InList { expr, list, .. } => {
                self.walk(expr);
                for e in list {
                    self.walk(e);
                }
            }
            Expr::InSubquery { expr, subquery, .. } => {
                self.walk(expr);
                self.subqueries.push(subquery);
            }
            Expr::Between { expr, low, high, .. } => {
                self.walk(expr);
                self.walk(low);
                self.walk(high);
            }
            Expr::Like { expr, pattern, .. } => {
                self.walk(expr);
                self.walk(pattern);
            }
            Expr::Case { operand, conditions, results, else_result } => {
                if let Some(op) = operand {
                    self.walk(op);
                }
                for e in conditions.iter().chain(results.iter()) {
                    self.walk(e);
                }
                if let Some(e) = else_result {
                    self.walk(e);
                }
            }
            Expr::Cast { expr, .. } => self.walk(expr),
            Expr::Extract { expr, .. } => self.walk(expr),
            Expr::Substring { expr, from, for_len } => {
                self.walk(expr);
                if let Some(e) = from {
                    self.walk(e);
                }
                if let Some(e) = for_len {
                    self.walk(e);
                }
            }
            Expr::Trim { expr, what, .. } => {
                self.walk(expr);
                if let Some(e) = what {
                    self.walk(e);
                }
            }
            Expr::Position { expr, in_expr } => {
                self.walk(expr);
                self.walk(in_expr);
            }
            Expr::Interval { value, .. } => self.walk(value),
            Expr::Function(func) => self.walk_function(func),
            Expr::Exists { subquery, .. } => self.subqueries.push(subquery),
            Expr::Subquery(q) => self.subqueries.push(q),
            Expr::QuantifiedComparison { expr, subquery, .. } => {
                self.walk(expr);
                self.subqueries.push(subquery);
            }
            Expr::Tuple(items) => {
                for e in items {
                    self.walk(e);
                }
            }
        }
    }

    fn walk_function(&mut self, func: &'a Function) {
        for arg in &func.args {
            match arg {
                FunctionArg::Expr(e) => self.walk(e),
                FunctionArg::Wildcard => self.has_wildcard = true,
                FunctionArg::QualifiedWildcard(name) => self.qualified_wildcards.push(name),
            }
        }
        if let Some(filter) = &func.filter {
            self.walk(filter);
        }
        if let Some(over) = &func.over {
            for e in &over.partition_by {
                self.walk(e);
            }
            for ob in &over.order_by {
                self.walk(&ob.expr);
            }
        }
    }
}

/// Derive the output column name SQL gives an unaliased projection, using
/// Postgres conventions: a column reference keeps its (last) name, casts and
/// parentheses are transparent, function calls are named after the function,
/// `EXTRACT` yields `extract`, `CASE` yields `case`, and anything else
/// becomes the anonymous `?column?`.
///
/// Both the lineage extractor and the catalog binder use this single
/// definition so the static and EXPLAIN-based paths agree on names.
pub fn output_name(expr: &Expr) -> String {
    match expr {
        Expr::Identifier(i) => i.value.clone(),
        Expr::CompoundIdentifier(parts) => {
            parts.last().map(|i| i.value.clone()).unwrap_or_else(|| "?column?".into())
        }
        Expr::Nested(inner) | Expr::Cast { expr: inner, .. } => output_name(inner),
        Expr::Function(f) => f.name.base_name().to_string(),
        Expr::Extract { .. } => "extract".into(),
        Expr::Case { .. } => "case".into(),
        Expr::Substring { .. } => "substring".into(),
        Expr::Trim { .. } => "trim".into(),
        Expr::Position { .. } => "position".into(),
        Expr::Exists { .. } => "exists".into(),
        Expr::Subquery(q) => subquery_output_name(q),
        Expr::Interval { .. } => "interval".into(),
        Expr::Literal(crate::ast::Literal::Boolean(_)) => "bool".into(),
        _ => "?column?".into(),
    }
}

/// Name a scalar subquery after its single output column when derivable.
fn subquery_output_name(query: &Query) -> String {
    use crate::ast::{SelectItem, SetExpr};
    if let SetExpr::Select(select) = &query.body {
        if let Some(first) = select.projection.first() {
            return match first {
                SelectItem::ExprWithAlias { alias, .. } => alias.value.clone(),
                SelectItem::UnnamedExpr(e) => output_name(e),
                _ => "?column?".into(),
            };
        }
    }
    "?column?".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parse_statement;

    fn refs_of(sql: &str) -> (Vec<String>, usize) {
        let stmt = parse_statement(sql).unwrap();
        let Statement::Query(q) = stmt else { panic!("expected query") };
        let crate::ast::SetExpr::Select(sel) = &q.body else { panic!("expected select") };
        let refs = ExprRefs::from_expr(sel.selection.as_ref().unwrap());
        let cols = refs
            .columns
            .iter()
            .map(|c| match c.table() {
                Some(t) => format!("{t}.{}", c.column.value),
                None => c.column.value.clone(),
            })
            .collect();
        (cols, refs.subqueries.len())
    }

    #[test]
    fn collects_simple_columns() {
        let (cols, subs) = refs_of("SELECT 1 FROM t WHERE a = b AND t.c > 5");
        assert_eq!(cols, vec!["a", "b", "t.c"]);
        assert_eq!(subs, 0);
    }

    #[test]
    fn does_not_descend_into_subqueries() {
        let (cols, subs) = refs_of("SELECT 1 FROM t WHERE a IN (SELECT x FROM u WHERE u.y = 1)");
        assert_eq!(cols, vec!["a"]);
        assert_eq!(subs, 1);
    }

    #[test]
    fn collects_from_case_and_functions() {
        let (cols, _) =
            refs_of("SELECT 1 FROM t WHERE CASE WHEN a > 0 THEN b ELSE c END = coalesce(d, e)");
        assert_eq!(cols, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn collects_exists_subquery() {
        let (cols, subs) = refs_of("SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u)");
        assert!(cols.is_empty());
        assert_eq!(subs, 1);
    }

    #[test]
    fn collects_window_spec_columns() {
        let stmt =
            parse_statement("SELECT sum(x) OVER (PARTITION BY dept ORDER BY hired) FROM emp")
                .unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        let crate::ast::SetExpr::Select(sel) = &q.body else { panic!() };
        let crate::ast::SelectItem::UnnamedExpr(e) = &sel.projection[0] else { panic!() };
        let refs = ExprRefs::from_expr(e);
        let names: Vec<_> = refs.columns.iter().map(|c| c.column.value.clone()).collect();
        assert_eq!(names, vec!["x", "dept", "hired"]);
    }

    #[test]
    fn qualified_wildcard_in_count() {
        let stmt = parse_statement("SELECT count(t.*) FROM t").unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        let crate::ast::SetExpr::Select(sel) = &q.body else { panic!() };
        let crate::ast::SelectItem::UnnamedExpr(e) = &sel.projection[0] else { panic!() };
        let refs = ExprRefs::from_expr(e);
        assert_eq!(refs.qualified_wildcards.len(), 1);
        assert!(!refs.has_wildcard);
    }

    #[test]
    fn three_part_identifier_table() {
        let (cols, _) = refs_of("SELECT 1 FROM t WHERE public.t.c = 1");
        assert_eq!(cols, vec!["t.c"]);
    }

    fn name_of(projection_sql: &str) -> String {
        let stmt = parse_statement(&format!("SELECT {projection_sql} FROM t")).unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        let crate::ast::SetExpr::Select(sel) = &q.body else { panic!() };
        let crate::ast::SelectItem::UnnamedExpr(e) = &sel.projection[0] else { panic!() };
        output_name(e)
    }

    #[test]
    fn output_names_follow_postgres_rules() {
        assert_eq!(name_of("a"), "a");
        assert_eq!(name_of("t.a"), "a");
        assert_eq!(name_of("(a)"), "a");
        assert_eq!(name_of("a::int"), "a");
        assert_eq!(name_of("CAST(t.a AS text)"), "a");
        assert_eq!(name_of("lower(a)"), "lower");
        assert_eq!(name_of("count(*)"), "count");
        assert_eq!(name_of("EXTRACT(year FROM ts)"), "extract");
        assert_eq!(name_of("CASE WHEN a THEN 1 END"), "case");
        assert_eq!(name_of("1 + 2"), "?column?");
        assert_eq!(name_of("'str'"), "?column?");
        assert_eq!(name_of("(SELECT x FROM u)"), "x");
        assert_eq!(name_of("(SELECT max(x) AS mx FROM u)"), "mx");
    }
}
