//! The SQL abstract syntax tree.
//!
//! The tree mirrors the analytical SQL grammar the LineageX extractor
//! traverses. All nodes implement `Display`, producing SQL that parses back
//! to an identical tree (verified by the round-trip property tests).

mod display;
mod expr;
mod ident;
mod query;
mod stmt;
pub mod visit;

pub use expr::{
    BinaryOperator, DataType, FrameBound, FrameUnits, Function, FunctionArg, Literal, TrimSide,
    UnaryOperator, WindowFrame, WindowSpec,
};
pub use ident::{Ident, ObjectName};
pub use query::{
    Cte, Distinct, Join, JoinConstraint, JoinOperator, OrderByExpr, Query, Select, SelectItem,
    SetExpr, SetOperator, TableAlias, TableFactor, TableWithJoins, Values, With,
};
pub use stmt::{
    Assignment, ColumnDef, ColumnOption, MergeStatement, NoiseKind, NoiseStatement, ObjectType,
    SpannedStatement, Statement, TableConstraint,
};

pub use expr::Expr;
