//! Query-level AST nodes: `SELECT`, set operations, joins, CTEs.

use super::expr::Expr;
use super::ident::{Ident, ObjectName};

/// A full query: optional CTEs, a set-expression body, and trailing clauses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// The `WITH` clause, if present.
    pub with: Option<With>,
    /// The query body (a `SELECT`, set operation, `VALUES`, or nested query).
    pub body: SetExpr,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByExpr>,
    /// `LIMIT` expression.
    pub limit: Option<Expr>,
    /// `OFFSET` expression.
    pub offset: Option<Expr>,
}

impl Query {
    /// Wrap a bare `SELECT` into a query with no trailing clauses.
    pub fn from_select(select: Select) -> Query {
        Query {
            with: None,
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// A `WITH` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct With {
    /// `WITH RECURSIVE` when true.
    pub recursive: bool,
    /// The common table expressions in declaration order.
    pub ctes: Vec<Cte>,
}

/// One common table expression: `name [(cols)] AS (query)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cte {
    /// The CTE name and optional explicit column list.
    pub alias: TableAlias,
    /// The CTE body.
    pub query: Box<Query>,
}

/// The body of a query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SetExpr {
    /// A plain `SELECT`.
    Select(Box<Select>),
    /// A parenthesised query (own ORDER BY/LIMIT allowed).
    Query(Box<Query>),
    /// `left UNION/INTERSECT/EXCEPT [ALL] right`.
    SetOperation {
        /// Which set operator.
        op: SetOperator,
        /// `ALL` when true (bag semantics).
        all: bool,
        /// Left branch.
        left: Box<SetExpr>,
        /// Right branch.
        right: Box<SetExpr>,
    },
    /// A `VALUES (..), (..)` constructor.
    Values(Values),
}

/// The three SQL set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SetOperator {
    Union,
    Intersect,
    Except,
}

impl SetOperator {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            SetOperator::Union => "UNION",
            SetOperator::Intersect => "INTERSECT",
            SetOperator::Except => "EXCEPT",
        }
    }
}

/// Rows of a `VALUES` constructor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Values(pub Vec<Vec<Expr>>);

/// The `DISTINCT` variants.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Distinct {
    /// Plain `DISTINCT`.
    Distinct,
    /// Postgres `DISTINCT ON (exprs)`.
    On(Vec<Expr>),
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Select {
    /// Optional `DISTINCT` / `DISTINCT ON`.
    pub distinct: Option<Distinct>,
    /// T-SQL `TOP n` row limit (dialect-gated at parse time).
    pub top: Option<Expr>,
    /// The projection list.
    pub projection: Vec<SelectItem>,
    /// The `FROM` clause: one entry per comma-separated factor.
    pub from: Vec<TableWithJoins>,
    /// The `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// Snowflake/BigQuery `QUALIFY` predicate (dialect-gated at parse
    /// time).
    pub qualify: Option<Expr>,
}

impl Select {
    /// An empty select with the given projection (used by tests/builders).
    pub fn projecting(projection: Vec<SelectItem>) -> Select {
        Select {
            distinct: None,
            top: None,
            projection,
            from: Vec::new(),
            selection: None,
            group_by: Vec::new(),
            having: None,
            qualify: None,
        }
    }
}

/// One item in a projection list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SelectItem {
    /// `expr` with no alias.
    UnnamedExpr(Expr),
    /// `expr AS alias`.
    ExprWithAlias {
        /// The projected expression.
        expr: Expr,
        /// Its output name.
        alias: Ident,
    },
    /// `t.*` (or `schema.t.*`).
    QualifiedWildcard(ObjectName),
    /// Bare `*`.
    Wildcard,
}

/// A table alias with an optional column-rename list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableAlias {
    /// The alias name.
    pub name: Ident,
    /// Optional column aliases: `t(a, b, c)`.
    pub columns: Vec<Ident>,
}

impl TableAlias {
    /// A plain alias without column renames.
    pub fn new(name: impl AsRef<str>) -> Self {
        TableAlias { name: Ident::new(name), columns: Vec::new() }
    }
}

/// One `FROM`-clause factor with its chained joins.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableWithJoins {
    /// The leftmost relation.
    pub relation: TableFactor,
    /// Joins applied left-to-right.
    pub joins: Vec<Join>,
}

/// A relation appearing in `FROM`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TableFactor {
    /// A named table / view / CTE reference.
    Table {
        /// The (possibly qualified) name.
        name: ObjectName,
        /// Optional alias.
        alias: Option<TableAlias>,
    },
    /// A derived table `( subquery ) [AS] alias`.
    Derived {
        /// `LATERAL` when true.
        lateral: bool,
        /// The subquery.
        subquery: Box<Query>,
        /// Optional alias (usually required by engines, optional here).
        alias: Option<TableAlias>,
    },
    /// A parenthesised join tree.
    NestedJoin(Box<TableWithJoins>),
}

impl TableFactor {
    /// Alias name if present, else the base table name for `Table` factors.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableFactor::Table { name, alias } => {
                Some(alias.as_ref().map(|a| a.name.value.as_str()).unwrap_or(name.base_name()))
            }
            TableFactor::Derived { alias, .. } => alias.as_ref().map(|a| a.name.value.as_str()),
            TableFactor::NestedJoin(_) => None,
        }
    }
}

/// A join step.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Join {
    /// The joined relation.
    pub relation: TableFactor,
    /// The join kind and constraint.
    pub join_operator: JoinOperator,
}

/// Join kinds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinOperator {
    /// `[INNER] JOIN ... ON/USING`.
    Inner(JoinConstraint),
    /// `LEFT [OUTER] JOIN`.
    LeftOuter(JoinConstraint),
    /// `RIGHT [OUTER] JOIN`.
    RightOuter(JoinConstraint),
    /// `FULL [OUTER] JOIN`.
    FullOuter(JoinConstraint),
    /// `CROSS JOIN`.
    CrossJoin,
}

impl JoinOperator {
    /// The join constraint, when the kind carries one.
    pub fn constraint(&self) -> Option<&JoinConstraint> {
        match self {
            JoinOperator::Inner(c)
            | JoinOperator::LeftOuter(c)
            | JoinOperator::RightOuter(c)
            | JoinOperator::FullOuter(c) => Some(c),
            JoinOperator::CrossJoin => None,
        }
    }
}

/// Join constraints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinConstraint {
    /// `ON <predicate>`.
    On(Expr),
    /// `USING (col, ...)`.
    Using(Vec<Ident>),
    /// `NATURAL` join.
    Natural,
    /// No constraint written (comma join rewritten, etc.).
    None,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderByExpr {
    /// The sort expression.
    pub expr: Expr,
    /// `ASC`(true)/`DESC`(false) if written.
    pub asc: Option<bool>,
    /// `NULLS FIRST`(true)/`NULLS LAST`(false) if written.
    pub nulls_first: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableFactor::Table {
            name: ObjectName::single("customers"),
            alias: Some(TableAlias::new("c")),
        };
        assert_eq!(t.binding_name(), Some("c"));
        let t = TableFactor::Table { name: ObjectName::single("customers"), alias: None };
        assert_eq!(t.binding_name(), Some("customers"));
    }

    #[test]
    fn derived_without_alias_has_no_binding() {
        let q = Query::from_select(Select::projecting(vec![SelectItem::Wildcard]));
        let t = TableFactor::Derived { lateral: false, subquery: Box::new(q), alias: None };
        assert_eq!(t.binding_name(), None);
    }

    #[test]
    fn join_constraint_accessor() {
        let j = JoinOperator::LeftOuter(JoinConstraint::Using(vec![Ident::new("id")]));
        assert!(matches!(j.constraint(), Some(JoinConstraint::Using(_))));
        assert!(JoinOperator::CrossJoin.constraint().is_none());
    }

    #[test]
    fn set_operator_spelling() {
        assert_eq!(SetOperator::Intersect.as_str(), "INTERSECT");
    }
}
