//! Top-level statements: queries, DDL, and `INSERT ... SELECT`.

use super::expr::{DataType, Expr};
use super::ident::{Ident, ObjectName};
use super::query::Query;
use crate::span::Span;

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Statement {
    /// A bare query.
    Query(Box<Query>),
    /// `CREATE [OR REPLACE] [MATERIALIZED|TEMPORARY] VIEW name [(cols)] AS query`.
    CreateView {
        /// `OR REPLACE` present.
        or_replace: bool,
        /// `MATERIALIZED` present.
        materialized: bool,
        /// `TEMPORARY`/`TEMP` present.
        temporary: bool,
        /// `IF NOT EXISTS` present.
        if_not_exists: bool,
        /// The view name.
        name: ObjectName,
        /// Optional explicit output column names.
        columns: Vec<Ident>,
        /// The defining query.
        query: Box<Query>,
    },
    /// `CREATE TABLE name (cols...)` or `CREATE TABLE name AS query`.
    CreateTable {
        /// `OR REPLACE` present.
        or_replace: bool,
        /// `TEMPORARY`/`TEMP` present.
        temporary: bool,
        /// `IF NOT EXISTS` present.
        if_not_exists: bool,
        /// The table name.
        name: ObjectName,
        /// Column definitions (empty for bare CTAS).
        columns: Vec<ColumnDef>,
        /// Table-level constraints.
        constraints: Vec<TableConstraint>,
        /// The `AS query` part for CTAS.
        query: Option<Box<Query>>,
    },
    /// `INSERT INTO table [(cols)] query`.
    Insert {
        /// Target table.
        table: ObjectName,
        /// Optional explicit target columns.
        columns: Vec<Ident>,
        /// The source query (`SELECT ...` or `VALUES ...`).
        source: Box<Query>,
    },
    /// `DROP TABLE/VIEW [IF EXISTS] names`.
    Drop {
        /// What kind of object is dropped.
        object_type: ObjectType,
        /// `IF EXISTS` present.
        if_exists: bool,
        /// The dropped names.
        names: Vec<ObjectName>,
    },
    /// `UPDATE table [AS alias] SET col = expr, ... [FROM rels] [WHERE ...]`.
    Update {
        /// The target table.
        table: ObjectName,
        /// Optional target alias.
        alias: Option<crate::ast::TableAlias>,
        /// The `SET` assignments in written order.
        assignments: Vec<Assignment>,
        /// Postgres-style `FROM` relations joined into the update.
        from: Vec<crate::ast::TableWithJoins>,
        /// The `WHERE` predicate.
        selection: Option<Expr>,
    },
    /// `DELETE FROM table [AS alias] [USING rels] [WHERE ...]`.
    Delete {
        /// The target table.
        table: ObjectName,
        /// Optional target alias.
        alias: Option<crate::ast::TableAlias>,
        /// Postgres-style `USING` relations.
        using: Vec<crate::ast::TableWithJoins>,
        /// The `WHERE` predicate.
        selection: Option<Expr>,
    },
    /// Query-log noise that carries neither lineage nor schema:
    /// `EXPLAIN`, `SET`, `BEGIN`/`COMMIT`/`ROLLBACK`, `ANALYZE`. The
    /// parser recognises the leading keyword, consumes the statement to
    /// its terminating `;`, and records which kind it saw plus the
    /// token text — enough for downstream layers to emit a typed
    /// diagnostic instead of tripping over real production logs.
    Noise(NoiseStatement),
    /// A dialect-specific statement the parser recognises but does not
    /// model structurally (today: `MERGE [INTO] target ...` under the
    /// dialects that support it). Parsed shallowly — the target name is
    /// captured for diagnostics and the rest is consumed to the
    /// terminating `;` — so downstream layers degrade it to a
    /// `dialect-fallback` diagnostic instead of an opaque parse error.
    Merge(MergeStatement),
}

/// A shallowly-parsed `MERGE` statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MergeStatement {
    /// The merge target's (possibly qualified) name, for diagnostics.
    pub target: ObjectName,
    /// The statement rendered from its tokens (space-separated).
    pub text: String,
}

/// One recognised-but-skipped log-noise statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NoiseStatement {
    /// Which noise family the statement belongs to.
    pub kind: NoiseKind,
    /// The statement rendered from its tokens (space-separated), e.g.
    /// `EXPLAIN SELECT a FROM t`.
    pub text: String,
}

/// The noise statement families the parser recognises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// `EXPLAIN [ANALYZE] <statement>`.
    Explain,
    /// `SET parameter = value` (session configuration).
    Set,
    /// `BEGIN [TRANSACTION|WORK]`.
    Begin,
    /// `COMMIT [TRANSACTION|WORK]`.
    Commit,
    /// `ROLLBACK [TRANSACTION|WORK]`.
    Rollback,
    /// `ANALYZE [table]` (planner statistics).
    Analyze,
}

impl NoiseKind {
    /// The canonical upper-case name of the noise family.
    pub fn as_str(&self) -> &'static str {
        match self {
            NoiseKind::Explain => "EXPLAIN",
            NoiseKind::Set => "SET",
            NoiseKind::Begin => "BEGIN",
            NoiseKind::Commit => "COMMIT",
            NoiseKind::Rollback => "ROLLBACK",
            NoiseKind::Analyze => "ANALYZE",
        }
    }
}

/// A parsed statement together with the source span it covers (first to
/// last token). [`crate::Parser::parse_sql_spanned`] and the recovering
/// entry point return these so every downstream layer can report
/// precisely where in the log a statement came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpannedStatement {
    /// The parsed statement.
    pub statement: Statement,
    /// The source range the statement occupies (semicolon excluded).
    pub span: Span,
}

/// One `SET` assignment of an `UPDATE`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// The assigned column.
    pub column: Ident,
    /// The value expression.
    pub value: Expr,
}

/// Object kinds for `DROP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ObjectType {
    Table,
    View,
    MaterializedView,
}

impl Statement {
    /// The name this statement creates, if it is a `CREATE` statement.
    pub fn created_name(&self) -> Option<&ObjectName> {
        match self {
            Statement::CreateView { name, .. } | Statement::CreateTable { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Wrap the statement with a source span.
    pub fn with_span(self, span: Span) -> SpannedStatement {
        SpannedStatement { statement: self, span }
    }

    /// The defining query of this statement, if any (`SELECT` body of a
    /// view/CTAS/insert, or the statement itself for bare queries).
    /// `UPDATE`/`DELETE` carry no query body; see
    /// [`Statement::update_as_query`].
    pub fn defining_query(&self) -> Option<&Query> {
        match self {
            Statement::Query(q) => Some(q),
            Statement::CreateView { query, .. } => Some(query),
            Statement::CreateTable { query, .. } => query.as_deref(),
            Statement::Insert { source, .. } => Some(source),
            Statement::Drop { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. }
            | Statement::Noise(_)
            | Statement::Merge(_) => None,
        }
    }

    /// Rewrite an `UPDATE` into the semantically-equivalent `SELECT` for
    /// lineage purposes:
    ///
    /// ```sql
    /// UPDATE t AS a SET c = e, ... FROM r WHERE p
    /// -- becomes
    /// SELECT e AS c, ... FROM t AS a, r WHERE p
    /// ```
    ///
    /// The target table scans first so `SET` expressions and predicates
    /// can reference its columns; each assignment becomes an aliased
    /// projection, giving the updated column's `C_con` directly.
    pub fn update_as_query(&self) -> Option<Query> {
        let Statement::Update { table, alias, assignments, from, selection } = self else {
            return None;
        };
        use crate::ast::{Select, SelectItem, TableFactor, TableWithJoins};
        let mut from_items = vec![TableWithJoins {
            relation: TableFactor::Table { name: table.clone(), alias: alias.clone() },
            joins: Vec::new(),
        }];
        from_items.extend(from.iter().cloned());
        let select = Select {
            distinct: None,
            top: None,
            projection: assignments
                .iter()
                .map(|a| SelectItem::ExprWithAlias {
                    expr: a.value.clone(),
                    alias: a.column.clone(),
                })
                .collect(),
            from: from_items,
            selection: selection.clone(),
            group_by: Vec::new(),
            having: None,
            qualify: None,
        };
        Some(Query::from_select(select))
    }
}

/// One column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnDef {
    /// The column name.
    pub name: Ident,
    /// Its declared type.
    pub data_type: DataType,
    /// Column options in written order.
    pub options: Vec<ColumnOption>,
}

/// Column-level options/constraints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ColumnOption {
    /// `NOT NULL`.
    NotNull,
    /// Explicit `NULL`.
    Null,
    /// `PRIMARY KEY`.
    PrimaryKey,
    /// `UNIQUE`.
    Unique,
    /// `DEFAULT expr`.
    Default(Expr),
    /// `REFERENCES table [(col)]`.
    References {
        /// Referenced table.
        table: ObjectName,
        /// Referenced column, if written.
        column: Option<Ident>,
    },
    /// `CHECK (expr)`.
    Check(Expr),
}

/// Table-level constraints inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TableConstraint {
    /// `PRIMARY KEY (cols)`.
    PrimaryKey(Vec<Ident>),
    /// `UNIQUE (cols)`.
    Unique(Vec<Ident>),
    /// `FOREIGN KEY (cols) REFERENCES table [(cols)]`.
    ForeignKey {
        /// Referencing columns.
        columns: Vec<Ident>,
        /// Referenced table.
        foreign_table: ObjectName,
        /// Referenced columns.
        referred_columns: Vec<Ident>,
    },
    /// `CHECK (expr)`.
    Check(Expr),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Select, SelectItem};

    fn dummy_query() -> Box<Query> {
        Box::new(Query::from_select(Select::projecting(vec![SelectItem::Wildcard])))
    }

    #[test]
    fn created_name_for_view() {
        let s = Statement::CreateView {
            or_replace: false,
            materialized: false,
            temporary: false,
            if_not_exists: false,
            name: ObjectName::single("info"),
            columns: vec![],
            query: dummy_query(),
        };
        assert_eq!(s.created_name().unwrap().base_name(), "info");
        assert!(s.defining_query().is_some());
    }

    #[test]
    fn bare_query_has_no_created_name() {
        let s = Statement::Query(dummy_query());
        assert!(s.created_name().is_none());
        assert!(s.defining_query().is_some());
    }

    #[test]
    fn plain_create_table_has_no_defining_query() {
        let s = Statement::CreateTable {
            or_replace: false,
            temporary: false,
            if_not_exists: false,
            name: ObjectName::single("t"),
            columns: vec![],
            constraints: vec![],
            query: None,
        };
        assert!(s.defining_query().is_none());
        assert_eq!(s.created_name().unwrap().base_name(), "t");
    }

    #[test]
    fn drop_has_neither() {
        let s = Statement::Drop {
            object_type: ObjectType::View,
            if_exists: true,
            names: vec![ObjectName::single("v")],
        };
        assert!(s.created_name().is_none());
        assert!(s.defining_query().is_none());
    }
}
