//! Lexical tokens produced by the [`crate::lexer::Lexer`].

use crate::keywords::Keyword;
use crate::span::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A bare or quoted identifier, possibly classified as a keyword.
    Word(Word),
    /// A numeric literal, kept verbatim (`42`, `3.14`, `1e-5`).
    Number(String),
    /// A single-quoted string literal with escapes already folded.
    SingleQuotedString(String),
    /// A national string literal `N'...'` (treated like a normal string).
    NationalString(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semicolon,
    /// `.`
    Period,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    LtEq,
    /// `>=`
    GtEq,
    /// `||` string concatenation
    Concat,
    /// `::` Postgres-style cast
    DoubleColon,
    /// `?` or `$n` placeholder
    Placeholder(String),
    /// `^`
    Caret,
    /// End of input.
    Eof,
}

/// An identifier-like token: either a keyword or a (possibly quoted) name.
#[derive(Debug, Clone, PartialEq)]
pub struct Word {
    /// The identifier text. For quoted identifiers this is the exact quoted
    /// content; for bare words it is the text as written.
    pub value: String,
    /// The quoting character (`"`, `` ` `` or `[`), if the word was quoted.
    pub quote: Option<char>,
    /// The keyword classification of a bare word, if any. Quoted words are
    /// never keywords.
    pub keyword: Option<Keyword>,
}

impl Word {
    /// Build a bare word, classifying it against the keyword table.
    pub fn bare(value: impl Into<String>) -> Self {
        let value = value.into();
        let keyword = Keyword::lookup(&value);
        Word { value, quote: None, keyword }
    }

    /// Build a quoted word (never a keyword).
    pub fn quoted(value: impl Into<String>, quote: char) -> Self {
        Word { value: value.into(), quote: Some(quote), keyword: None }
    }
}

impl Token {
    /// Whether this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self, Token::Word(w) if w.keyword == Some(kw))
    }

    /// Whether this token can begin an identifier chain (bare word, quoted
    /// word, or non-reserved keyword used as a name).
    pub fn is_word(&self) -> bool {
        matches!(self, Token::Word(_))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => match w.quote {
                Some('[') => write!(f, "[{}]", w.value),
                Some(q) => write!(f, "{q}{}{q}", w.value),
                None => write!(f, "{}", w.value),
            },
            Token::Number(n) => write!(f, "{n}"),
            Token::SingleQuotedString(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Token::NationalString(s) => write!(f, "N'{}'", s.replace('\'', "''")),
            Token::Comma => f.write_str(","),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Semicolon => f.write_str(";"),
            Token::Period => f.write_str("."),
            Token::Star => f.write_str("*"),
            Token::Plus => f.write_str("+"),
            Token::Minus => f.write_str("-"),
            Token::Slash => f.write_str("/"),
            Token::Percent => f.write_str("%"),
            Token::Eq => f.write_str("="),
            Token::Neq => f.write_str("<>"),
            Token::Lt => f.write_str("<"),
            Token::Gt => f.write_str(">"),
            Token::LtEq => f.write_str("<="),
            Token::GtEq => f.write_str(">="),
            Token::Concat => f.write_str("||"),
            Token::DoubleColon => f.write_str("::"),
            Token::Placeholder(p) => write!(f, "{p}"),
            Token::Caret => f.write_str("^"),
            Token::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token itself.
    pub token: Token,
    /// Where it came from in the source.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_word_classifies_keywords() {
        let w = Word::bare("select");
        assert_eq!(w.keyword, Some(Keyword::SELECT));
        let w = Word::bare("customers");
        assert_eq!(w.keyword, None);
    }

    #[test]
    fn quoted_word_is_never_keyword() {
        let w = Word::quoted("select", '"');
        assert_eq!(w.keyword, None);
        assert_eq!(w.quote, Some('"'));
    }

    #[test]
    fn display_escapes_string_quotes() {
        let t = Token::SingleQuotedString("it's".into());
        assert_eq!(t.to_string(), "'it''s'");
    }

    #[test]
    fn display_renders_bracket_quotes() {
        let t = Token::Word(Word::quoted("weird name", '['));
        assert_eq!(t.to_string(), "[weird name]");
    }

    #[test]
    fn is_keyword_matches_only_that_keyword() {
        let t = Token::Word(Word::bare("FROM"));
        assert!(t.is_keyword(Keyword::FROM));
        assert!(!t.is_keyword(Keyword::SELECT));
        assert!(!Token::Comma.is_keyword(Keyword::FROM));
    }
}
