//! The dialect subsystem: one pluggable surface for every lexing and
//! parsing decision that differs between SQL engines.
//!
//! Real query logs come from Postgres, Snowflake, BigQuery, and SQL
//! Server, and each one bends the ANSI grammar in small, well-documented
//! ways: which quote characters delimit identifiers, which characters
//! start a line comment, and which statement forms exist at all
//! (`QUALIFY`, `TOP n`, `MERGE`). Before this module those decisions
//! were hardcoded constants scattered through the lexer and parser; now
//! they are methods on the [`Dialect`] trait, and the lexer/parser hold
//! a `&'static dyn Dialect` they consult at each decision point.
//!
//! Two layers make up the surface:
//!
//! * [`Dialect`] — the behaviour object. Every method has an ANSI
//!   default, so a dialect implementation only overrides what it
//!   actually changes (the sqruff/sqlfluff layering model).
//! * [`DialectKind`] — a `Copy` selector enum that travels through
//!   options structs, CLI flags, snapshots, and wire protocols, and
//!   resolves to the behaviour object via [`DialectKind::behavior`].
//!
//! The [`Ansi`] dialect is deliberately the *permissive* legacy
//! grammar: it accepts all three identifier-quoting styles (`"x"`,
//! `` `x` ``, `[x]`) exactly as the pre-dialect lexer did, so every
//! existing caller, test, and golden file is unchanged. The named
//! dialects are stricter where their engines are: quoting a Snowflake
//! identifier with brackets is a lex error there, which is exactly how a
//! wrong-dialect log surfaces as span-tagged diagnostics instead of a
//! silently mis-shaped lineage graph.

use std::fmt;

/// Behaviour hooks the lexer and parser consult, one method per
/// decision point. Defaults are the ANSI core; dialects override only
/// their deviations.
pub trait Dialect: Sync + fmt::Debug {
    /// The lower-case dialect name (`"ansi"`, `"postgres"`, ...).
    fn name(&self) -> &'static str;

    /// Whether `# ...` starts a line comment (BigQuery, MySQL).
    fn hash_line_comments(&self) -> bool {
        false
    }

    /// Whether `// ...` starts a line comment (Snowflake).
    fn double_slash_line_comments(&self) -> bool {
        false
    }

    /// Whether `` `x` `` is a quoted identifier (BigQuery; the
    /// permissive ANSI core also accepts it).
    fn backtick_identifiers(&self) -> bool {
        false
    }

    /// Whether `[x]` is a quoted identifier (T-SQL; the permissive ANSI
    /// core also accepts it).
    fn bracket_identifiers(&self) -> bool {
        false
    }

    /// Whether a `QUALIFY <predicate>` clause may follow `HAVING`
    /// (Snowflake, BigQuery).
    fn supports_qualify(&self) -> bool {
        false
    }

    /// Whether `SELECT TOP n ...` is recognised (T-SQL).
    fn supports_top(&self) -> bool {
        false
    }

    /// Whether `MERGE [INTO] ...` is recognised at statement level.
    /// Recognised statements parse shallowly and degrade to a
    /// `dialect-fallback` diagnostic downstream — lineage is not
    /// extracted from them, but they can never corrupt neighbours.
    fn supports_merge(&self) -> bool {
        false
    }
}

/// The permissive legacy grammar: every quoting style, `--` and
/// `/* */` comments only, no dialect-specific statement forms.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ansi;

impl Dialect for Ansi {
    fn name(&self) -> &'static str {
        "ansi"
    }

    fn backtick_identifiers(&self) -> bool {
        true
    }

    fn bracket_identifiers(&self) -> bool {
        true
    }
}

/// PostgreSQL: strict `"x"` identifier quoting, `MERGE` (15+).
#[derive(Debug, Clone, Copy, Default)]
pub struct Postgres;

impl Dialect for Postgres {
    fn name(&self) -> &'static str {
        "postgres"
    }

    fn supports_merge(&self) -> bool {
        true
    }
}

/// Snowflake: `//` line comments, `"x"` quoting, `QUALIFY`, `MERGE`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Snowflake;

impl Dialect for Snowflake {
    fn name(&self) -> &'static str {
        "snowflake"
    }

    fn double_slash_line_comments(&self) -> bool {
        true
    }

    fn supports_qualify(&self) -> bool {
        true
    }

    fn supports_merge(&self) -> bool {
        true
    }
}

/// BigQuery: `#` line comments, backtick identifiers, `QUALIFY`,
/// `MERGE`.
#[derive(Debug, Clone, Copy, Default)]
pub struct BigQuery;

impl Dialect for BigQuery {
    fn name(&self) -> &'static str {
        "bigquery"
    }

    fn hash_line_comments(&self) -> bool {
        true
    }

    fn backtick_identifiers(&self) -> bool {
        true
    }

    fn supports_qualify(&self) -> bool {
        true
    }

    fn supports_merge(&self) -> bool {
        true
    }
}

/// SQL Server (T-SQL): `[x]` identifiers, `TOP n`, `MERGE`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TSql;

impl Dialect for TSql {
    fn name(&self) -> &'static str {
        "tsql"
    }

    fn bracket_identifiers(&self) -> bool {
        true
    }

    fn supports_top(&self) -> bool {
        true
    }

    fn supports_merge(&self) -> bool {
        true
    }
}

static ANSI: Ansi = Ansi;
static POSTGRES: Postgres = Postgres;
static SNOWFLAKE: Snowflake = Snowflake;
static BIGQUERY: BigQuery = BigQuery;
static TSQL: TSql = TSql;

/// The `Copy` dialect selector that travels through options structs,
/// CLI flags, snapshots, and the serve protocol. Resolve to the
/// behaviour object with [`DialectKind::behavior`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DialectKind {
    /// The permissive ANSI core (the default).
    #[default]
    Ansi,
    /// PostgreSQL.
    Postgres,
    /// Snowflake.
    Snowflake,
    /// Google BigQuery.
    BigQuery,
    /// Microsoft SQL Server (T-SQL).
    TSql,
}

impl DialectKind {
    /// Every selectable dialect, in stable id order.
    pub const ALL: [DialectKind; 5] = [
        DialectKind::Ansi,
        DialectKind::Postgres,
        DialectKind::Snowflake,
        DialectKind::BigQuery,
        DialectKind::TSql,
    ];

    /// The lower-case name used on CLIs, in snapshots, and on the wire.
    pub fn name(self) -> &'static str {
        self.behavior().name()
    }

    /// Parse a (case-insensitive) dialect name.
    pub fn parse(name: &str) -> Option<DialectKind> {
        let lower = name.to_ascii_lowercase();
        DialectKind::ALL.into_iter().find(|kind| kind.name() == lower)
    }

    /// A stable numeric id (used by the `engine.dialect` gauge and the
    /// snapshot format).
    pub fn id(self) -> u8 {
        match self {
            DialectKind::Ansi => 0,
            DialectKind::Postgres => 1,
            DialectKind::Snowflake => 2,
            DialectKind::BigQuery => 3,
            DialectKind::TSql => 4,
        }
    }

    /// The inverse of [`DialectKind::id`].
    pub fn from_id(id: u8) -> Option<DialectKind> {
        DialectKind::ALL.into_iter().find(|kind| kind.id() == id)
    }

    /// The behaviour object the lexer and parser consult.
    pub fn behavior(self) -> &'static dyn Dialect {
        match self {
            DialectKind::Ansi => &ANSI,
            DialectKind::Postgres => &POSTGRES,
            DialectKind::Snowflake => &SNOWFLAKE,
            DialectKind::BigQuery => &BIGQUERY,
            DialectKind::TSql => &TSQL,
        }
    }
}

impl fmt::Display for DialectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back_case_insensitively() {
        for kind in DialectKind::ALL {
            assert_eq!(DialectKind::parse(kind.name()), Some(kind));
            assert_eq!(DialectKind::parse(&kind.name().to_uppercase()), Some(kind));
        }
        assert_eq!(DialectKind::parse("oracle"), None);
        assert_eq!(DialectKind::parse(""), None);
    }

    #[test]
    fn ids_round_trip() {
        for kind in DialectKind::ALL {
            assert_eq!(DialectKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(DialectKind::from_id(200), None);
    }

    #[test]
    fn default_is_the_permissive_ansi_core() {
        let ansi = DialectKind::default().behavior();
        assert_eq!(ansi.name(), "ansi");
        assert!(ansi.backtick_identifiers());
        assert!(ansi.bracket_identifiers());
        assert!(!ansi.hash_line_comments());
        assert!(!ansi.supports_qualify());
        assert!(!ansi.supports_top());
        assert!(!ansi.supports_merge());
    }

    #[test]
    fn feature_matrix_matches_the_engines() {
        assert!(!DialectKind::Postgres.behavior().backtick_identifiers());
        assert!(!DialectKind::Postgres.behavior().bracket_identifiers());
        assert!(DialectKind::Postgres.behavior().supports_merge());
        assert!(DialectKind::Snowflake.behavior().double_slash_line_comments());
        assert!(DialectKind::Snowflake.behavior().supports_qualify());
        assert!(DialectKind::BigQuery.behavior().hash_line_comments());
        assert!(DialectKind::BigQuery.behavior().backtick_identifiers());
        assert!(DialectKind::TSql.behavior().bracket_identifiers());
        assert!(DialectKind::TSql.behavior().supports_top());
    }
}
