//! Reserved and semi-reserved SQL keywords.
//!
//! The lexer classifies every bare word against this table; words not listed
//! here are plain identifiers. Keyword matching is ASCII case-insensitive,
//! as in standard SQL.

macro_rules! define_keywords {
    ($($ident:ident),* $(,)?) => {
        /// A recognised SQL keyword.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($ident,)*
        }

        impl Keyword {
            /// The canonical upper-case spelling of the keyword.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(Keyword::$ident => stringify!($ident),)*
                }
            }

            /// Look a word up in the keyword table (case-insensitive).
            pub fn lookup(word: &str) -> Option<Keyword> {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    $(stringify!($ident) => Some(Keyword::$ident),)*
                    _ => None,
                }
            }
        }

        /// Every keyword the lexer recognises, in declaration order.
        pub const ALL_KEYWORDS: &[Keyword] = &[$(Keyword::$ident,)*];
    };
}

define_keywords!(
    ALL,
    ANALYZE,
    AND,
    ANY,
    AS,
    ASC,
    BEGIN,
    BETWEEN,
    BOTH,
    BY,
    CASE,
    CAST,
    CHECK,
    COMMIT,
    CONSTRAINT,
    CREATE,
    CROSS,
    CURRENT,
    DEFAULT,
    DELETE,
    DESC,
    DISTINCT,
    DROP,
    ELSE,
    END,
    EXCEPT,
    EXISTS,
    EXPLAIN,
    EXTRACT,
    FALSE,
    FETCH,
    FILTER,
    FIRST,
    FOLLOWING,
    FOR,
    FOREIGN,
    FROM,
    FULL,
    GROUP,
    HAVING,
    IF,
    ILIKE,
    IN,
    INNER,
    INSERT,
    INTERSECT,
    INTERVAL,
    INTO,
    IS,
    JOIN,
    KEY,
    LAST,
    LATERAL,
    LEADING,
    LEFT,
    LIKE,
    LIMIT,
    MATERIALIZED,
    MERGE,
    NATURAL,
    NEXT,
    NOT,
    NULL,
    NULLS,
    OFFSET,
    ON,
    ONLY,
    OR,
    ORDER,
    OUTER,
    OVER,
    PARTITION,
    POSITION,
    PRECEDING,
    PRIMARY,
    QUALIFY,
    RANGE,
    RECURSIVE,
    REFERENCES,
    REPLACE,
    RIGHT,
    ROLLBACK,
    ROW,
    ROWS,
    SELECT,
    SET,
    SIMILAR,
    SOME,
    SUBSTRING,
    TABLE,
    TEMP,
    TEMPORARY,
    THEN,
    TOP,
    TRAILING,
    TRIM,
    TRUE,
    UNBOUNDED,
    UNION,
    UNIQUE,
    UPDATE,
    USING,
    VALUES,
    VIEW,
    WHEN,
    WHERE,
    WINDOW,
    WITH,
);

impl Keyword {
    /// Keywords that may never be used as a bare column/table alias.
    ///
    /// SQL allows most keywords as aliases when prefixed by `AS`; without
    /// `AS`, an alias must not collide with clause-introducing keywords or
    /// the parser would mis-associate the following clause.
    pub fn is_reserved_for_alias(&self) -> bool {
        use Keyword::*;
        matches!(
            self,
            ALL | AND
                | AS
                | BETWEEN
                | BY
                | CASE
                | CREATE
                | CROSS
                | DISTINCT
                | ELSE
                | END
                | EXCEPT
                | FETCH
                | FILTER
                | FOR
                | FROM
                | FULL
                | GROUP
                | HAVING
                | ILIKE
                | IN
                | INNER
                | INSERT
                | INTERSECT
                | INTO
                | IS
                | JOIN
                | LATERAL
                | LEFT
                | LIKE
                | LIMIT
                | NATURAL
                | NOT
                | NULL
                | OFFSET
                | ON
                | OR
                | ORDER
                | OUTER
                | OVER
                | PARTITION
                | QUALIFY
                | RIGHT
                | SELECT
                | SET
                | SIMILAR
                | THEN
                | UNION
                | USING
                | VALUES
                | WHEN
                | WHERE
                | WINDOW
                | WITH
        )
    }

    /// Keywords that introduce a column-constraint or table-option region in
    /// `CREATE TABLE`, ending a column's data type.
    pub fn ends_column_def(&self) -> bool {
        use Keyword::*;
        matches!(
            self,
            CONSTRAINT
                | PRIMARY
                | FOREIGN
                | UNIQUE
                | CHECK
                | DEFAULT
                | NOT
                | NULL
                | REFERENCES
                | KEY
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::SELECT));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::SELECT));
        assert_eq!(Keyword::lookup("SELECT"), Some(Keyword::SELECT));
    }

    #[test]
    fn lookup_rejects_plain_identifiers() {
        assert_eq!(Keyword::lookup("customers"), None);
        assert_eq!(Keyword::lookup("wpage"), None);
        assert_eq!(Keyword::lookup(""), None);
    }

    #[test]
    fn as_str_round_trips_through_lookup() {
        for kw in ALL_KEYWORDS {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(*kw), "keyword {kw:?}");
        }
    }

    #[test]
    fn clause_keywords_are_reserved_for_alias() {
        assert!(Keyword::FROM.is_reserved_for_alias());
        assert!(Keyword::WHERE.is_reserved_for_alias());
        assert!(Keyword::UNION.is_reserved_for_alias());
        // Type-ish words can serve as aliases.
        assert!(!Keyword::KEY.is_reserved_for_alias());
        assert!(!Keyword::FIRST.is_reserved_for_alias());
        // QUALIFY introduces a clause in the dialects that have it, so a
        // bare alias may never shadow it; TOP and MERGE only matter at
        // positions where an alias is impossible.
        assert!(Keyword::QUALIFY.is_reserved_for_alias());
        assert!(!Keyword::TOP.is_reserved_for_alias());
        assert!(!Keyword::MERGE.is_reserved_for_alias());
    }
}
