//! The SQL lexer: turns raw text into a vector of [`SpannedToken`]s.
//!
//! Handles `--` line comments, `/* ... */` block comments (nested, as in
//! Postgres), single-quoted strings with `''` escapes, `E'...'` escape
//! strings, double-quoted / backtick / bracket identifiers, numbers with
//! exponents, and all multi-character operators used by the parser.

use crate::dialect::{Dialect, DialectKind};
use crate::error::ParseError;
use crate::span::{Location, Span};
use crate::token::{SpannedToken, Token, Word};

/// A streaming lexer over a SQL source string.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    dialect: &'static dyn Dialect,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src` using the permissive ANSI dialect.
    pub fn new(src: &'a str) -> Self {
        Lexer::with_dialect(src, DialectKind::Ansi)
    }

    /// Create a lexer over `src` for a specific dialect.
    pub fn with_dialect(src: &'a str, dialect: DialectKind) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1, dialect: dialect.behavior() }
    }

    /// Tokenize the entire input, appending a final [`Token::Eof`].
    pub fn tokenize(src: &'a str) -> Result<Vec<SpannedToken>, ParseError> {
        Lexer::tokenize_with(src, DialectKind::Ansi)
    }

    /// Tokenize the entire input under `dialect`, appending a final
    /// [`Token::Eof`].
    pub fn tokenize_with(
        src: &'a str,
        dialect: DialectKind,
    ) -> Result<Vec<SpannedToken>, ParseError> {
        let mut lexer = Lexer::with_dialect(src, dialect);
        let mut out = Vec::new();
        loop {
            let tok = lexer.next_token()?;
            let eof = tok.token == Token::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    /// Tokenize as much of the input as possible, collecting lex errors
    /// instead of aborting on the first one.
    ///
    /// After an error the lexer resynchronises at the next `;` in the raw
    /// text (the statement separator, which no token may contain), so one
    /// corrupt statement cannot take down the rest of a query log. Line
    /// and column accounting continue through the skipped region, so
    /// every span — before and after the error — stays accurate.
    pub fn tokenize_recovering(src: &'a str) -> (Vec<SpannedToken>, Vec<ParseError>) {
        Lexer::tokenize_recovering_with(src, DialectKind::Ansi)
    }

    /// [`Lexer::tokenize_recovering`] under a specific dialect.
    pub fn tokenize_recovering_with(
        src: &'a str,
        dialect: DialectKind,
    ) -> (Vec<SpannedToken>, Vec<ParseError>) {
        let mut lexer = Lexer::with_dialect(src, dialect);
        let mut out = Vec::new();
        let mut errors = Vec::new();
        loop {
            match lexer.next_token() {
                Ok(tok) => {
                    let eof = tok.token == Token::Eof;
                    out.push(tok);
                    if eof {
                        return (out, errors);
                    }
                }
                Err(error) => {
                    errors.push(error);
                    // The tokens since the last `;` belong to the corrupt
                    // statement; a truncated prefix must not masquerade as
                    // a complete statement, so discard them.
                    let boundary = out
                        .iter()
                        .rposition(|t: &SpannedToken| t.token == Token::Semicolon)
                        .map(|i| i + 1)
                        .unwrap_or(0);
                    out.truncate(boundary);
                    // Skip to the statement separator; the `;` itself is
                    // lexed normally on the next iteration. Every error
                    // path in `next_token` consumes at least one byte, so
                    // this loop always makes progress.
                    while let Some(b) = lexer.peek() {
                        if b == b';' {
                            break;
                        }
                        lexer.advance_char();
                    }
                }
            }
        }
    }

    fn location(&self) -> Location {
        Location::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    /// Advance one byte (must not be called mid-UTF8-sequence for col
    /// accounting; multi-byte chars advance via `advance_char`).
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Advance over one full (possibly multi-byte) character.
    fn advance_char(&mut self) {
        if let Some(c) = self.src[self.pos..].chars().next() {
            self.pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.bump();
                }
                Some(b'-') if self.peek_at(1) == Some(b'-') => {
                    self.skip_to_line_end();
                }
                Some(b'#') if self.dialect.hash_line_comments() => {
                    self.skip_to_line_end();
                }
                Some(b'/')
                    if self.peek_at(1) == Some(b'/')
                        && self.dialect.double_slash_line_comments() =>
                {
                    self.skip_to_line_end();
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    let start = self.location();
                    let start_pos = self.pos;
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek_at(1)) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(b'/'), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => self.advance_char(),
                            (None, _) => {
                                return Err(ParseError::new(
                                    "unterminated block comment",
                                    Span::new(start_pos, self.pos, start),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn skip_to_line_end(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.advance_char();
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Result<SpannedToken, ParseError> {
        self.skip_whitespace_and_comments()?;
        let start_pos = self.pos;
        let start_loc = self.location();
        let span = |lexer: &Lexer<'a>| Span::new(start_pos, lexer.pos, start_loc);

        let Some(b) = self.peek() else {
            return Ok(SpannedToken { token: Token::Eof, span: span(self) });
        };

        let token = match b {
            b'\'' => {
                let s = self.lex_single_quoted(start_pos, start_loc)?;
                Token::SingleQuotedString(s)
            }
            b'"' => {
                let s = self.lex_quoted_ident(b'"', b'"', start_pos, start_loc)?;
                Token::Word(Word::quoted(s, '"'))
            }
            b'`' if self.dialect.backtick_identifiers() => {
                let s = self.lex_quoted_ident(b'`', b'`', start_pos, start_loc)?;
                Token::Word(Word::quoted(s, '`'))
            }
            b'[' if self.dialect.bracket_identifiers() => {
                let s = self.lex_quoted_ident(b'[', b']', start_pos, start_loc)?;
                Token::Word(Word::quoted(s, '['))
            }
            b'0'..=b'9' => self.lex_number(),
            b'.' => {
                // `.5` is a number; `t.c` is a period.
                if matches!(self.peek_at(1), Some(b'0'..=b'9')) {
                    self.lex_number()
                } else {
                    self.bump();
                    Token::Period
                }
            }
            b',' => {
                self.bump();
                Token::Comma
            }
            b'(' => {
                self.bump();
                Token::LParen
            }
            b')' => {
                self.bump();
                Token::RParen
            }
            b';' => {
                self.bump();
                Token::Semicolon
            }
            b'*' => {
                self.bump();
                Token::Star
            }
            b'+' => {
                self.bump();
                Token::Plus
            }
            b'-' => {
                self.bump();
                Token::Minus
            }
            b'/' => {
                self.bump();
                Token::Slash
            }
            b'%' => {
                self.bump();
                Token::Percent
            }
            b'^' => {
                self.bump();
                Token::Caret
            }
            b'=' => {
                self.bump();
                Token::Eq
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::Neq
                } else {
                    return Err(ParseError::new("unexpected character '!'", span(self)));
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Token::LtEq
                    }
                    Some(b'>') => {
                        self.bump();
                        Token::Neq
                    }
                    _ => Token::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Token::GtEq
                } else {
                    Token::Gt
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Token::Concat
                } else {
                    return Err(ParseError::new("unexpected character '|'", span(self)));
                }
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b':') {
                    self.bump();
                    Token::DoubleColon
                } else {
                    return Err(ParseError::new("unexpected character ':'", span(self)));
                }
            }
            b'?' => {
                self.bump();
                Token::Placeholder("?".into())
            }
            b'$' => {
                self.bump();
                let mut p = String::from("$");
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    p.push(self.bump().unwrap() as char);
                }
                Token::Placeholder(p)
            }
            b'E' | b'e' if self.peek_at(1) == Some(b'\'') => {
                // Postgres escape string E'...'; fold common escapes.
                self.bump(); // E
                let s = self.lex_escape_string(start_pos, start_loc)?;
                Token::SingleQuotedString(s)
            }
            b'N' | b'n' if self.peek_at(1) == Some(b'\'') => {
                self.bump(); // N
                let s = self.lex_single_quoted(start_pos, start_loc)?;
                Token::NationalString(s)
            }
            _ if is_ident_start(b) || !b.is_ascii() => {
                let word = self.lex_word();
                Token::Word(Word::bare(word))
            }
            other => {
                self.advance_char();
                return Err(ParseError::new(
                    format!("unexpected character {:?}", other as char),
                    span(self),
                ));
            }
        };

        Ok(SpannedToken { token, span: span(self) })
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_ident_part(b) || !b.is_ascii() {
                self.advance_char();
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_string()
    }

    fn lex_number(&mut self) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        // Consume a fractional part only when a digit follows the dot, so
        // that `7.` lexes as the number `7` and a separate period.
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b'0'..=b'9')) {
            self.bump(); // '.'
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut lookahead = 1;
            if matches!(self.peek_at(1), Some(b'+') | Some(b'-')) {
                lookahead = 2;
            }
            if matches!(self.peek_at(lookahead), Some(b'0'..=b'9')) {
                for _ in 0..=lookahead {
                    self.bump();
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
        }
        Token::Number(self.src[start..self.pos].to_string())
    }

    fn lex_single_quoted(
        &mut self,
        start_pos: usize,
        start_loc: Location,
    ) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'\'') => {
                    self.bump();
                    if self.peek() == Some(b'\'') {
                        out.push('\'');
                        self.bump();
                    } else {
                        return Ok(out);
                    }
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.advance_char();
                }
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start_pos, self.pos, start_loc),
                    ))
                }
            }
        }
    }

    fn lex_escape_string(
        &mut self,
        start_pos: usize,
        start_loc: Location,
    ) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'\''));
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'\'') => {
                    self.bump();
                    if self.peek() == Some(b'\'') {
                        out.push('\'');
                        self.bump();
                    } else {
                        return Ok(out);
                    }
                }
                Some(b'\\') => {
                    self.bump();
                    let c = match self.peek() {
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        Some(b'\\') => '\\',
                        Some(b'\'') => '\'',
                        Some(other) => other as char,
                        None => {
                            return Err(ParseError::new(
                                "unterminated escape string",
                                Span::new(start_pos, self.pos, start_loc),
                            ))
                        }
                    };
                    out.push(c);
                    self.advance_char();
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.advance_char();
                }
                None => {
                    return Err(ParseError::new(
                        "unterminated string literal",
                        Span::new(start_pos, self.pos, start_loc),
                    ))
                }
            }
        }
    }

    fn lex_quoted_ident(
        &mut self,
        open: u8,
        close: u8,
        start_pos: usize,
        start_loc: Location,
    ) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some(open));
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b) if b == close => {
                    self.bump();
                    // Doubled close quote is an escaped quote char.
                    if self.peek() == Some(close) && open == close {
                        out.push(close as char);
                        self.bump();
                    } else {
                        return Ok(out);
                    }
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.advance_char();
                }
                None => {
                    return Err(ParseError::new(
                        "unterminated quoted identifier",
                        Span::new(start_pos, self.pos, start_loc),
                    ))
                }
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_part(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::Keyword;

    fn toks(sql: &str) -> Vec<Token> {
        Lexer::tokenize(sql).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let t = toks("SELECT a FROM t");
        assert_eq!(t.len(), 5); // SELECT a FROM t <eof>
        assert!(t[0].is_keyword(Keyword::SELECT));
        assert!(matches!(&t[1], Token::Word(w) if w.value == "a"));
        assert!(t[2].is_keyword(Keyword::FROM));
    }

    #[test]
    fn skips_line_comments() {
        let t = toks("SELECT -- comment here\n a");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn skips_nested_block_comments() {
        let t = toks("SELECT /* outer /* inner */ still outer */ a");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::tokenize("SELECT /* oops").is_err());
    }

    #[test]
    fn lexes_string_with_escaped_quote() {
        let t = toks("'it''s'");
        assert_eq!(t[0], Token::SingleQuotedString("it's".into()));
    }

    #[test]
    fn lexes_escape_string() {
        let t = toks(r"E'line\nbreak'");
        assert_eq!(t[0], Token::SingleQuotedString("line\nbreak".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::tokenize("'oops").is_err());
    }

    #[test]
    fn lexes_quoted_identifiers() {
        let t = toks(r#""Weird Name" `tick` [bracket name]"#);
        assert!(matches!(&t[0], Token::Word(w) if w.value == "Weird Name" && w.quote == Some('"')));
        assert!(matches!(&t[1], Token::Word(w) if w.value == "tick" && w.quote == Some('`')));
        assert!(
            matches!(&t[2], Token::Word(w) if w.value == "bracket name" && w.quote == Some('['))
        );
    }

    #[test]
    fn doubled_double_quote_escapes() {
        let t = toks(r#""a""b""#);
        assert!(matches!(&t[0], Token::Word(w) if w.value == "a\"b"));
    }

    #[test]
    fn lexes_numbers() {
        let t = toks("42 3.14 .5 1e6 2.5E-3 7.");
        assert_eq!(t[0], Token::Number("42".into()));
        assert_eq!(t[1], Token::Number("3.14".into()));
        assert_eq!(t[2], Token::Number(".5".into()));
        assert_eq!(t[3], Token::Number("1e6".into()));
        assert_eq!(t[4], Token::Number("2.5E-3".into()));
        // "7." lexes as number 7 then a period (identifier access never
        // follows a number in valid SQL).
        assert_eq!(t[5], Token::Number("7".into()));
        assert_eq!(t[6], Token::Period);
    }

    #[test]
    fn lexes_operators() {
        let t = toks("= <> != < > <= >= || :: ^ + - * / %");
        assert_eq!(
            &t[..t.len() - 1],
            &[
                Token::Eq,
                Token::Neq,
                Token::Neq,
                Token::Lt,
                Token::Gt,
                Token::LtEq,
                Token::GtEq,
                Token::Concat,
                Token::DoubleColon,
                Token::Caret,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn lexes_placeholders() {
        let t = toks("? $1 $23");
        assert_eq!(t[0], Token::Placeholder("?".into()));
        assert_eq!(t[1], Token::Placeholder("$1".into()));
        assert_eq!(t[2], Token::Placeholder("$23".into()));
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = Lexer::tokenize("SELECT\n  a").unwrap();
        assert_eq!(toks[1].span.location.line, 2);
        assert_eq!(toks[1].span.location.column, 3);
    }

    #[test]
    fn word_starting_with_e_is_not_escape_string() {
        let t = toks("extract epoch");
        assert!(matches!(&t[0], Token::Word(w) if w.keyword == Some(Keyword::EXTRACT)));
        assert!(matches!(&t[1], Token::Word(w) if w.value == "epoch"));
    }

    #[test]
    fn national_string() {
        let t = toks("N'café'");
        assert_eq!(t[0], Token::NationalString("café".into()));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(Lexer::tokenize("SELECT a # b").is_err());
        assert!(Lexer::tokenize("a ! b").is_err());
        assert!(Lexer::tokenize("a : b").is_err());
        assert!(Lexer::tokenize("a | b").is_err());
    }

    #[test]
    fn unicode_identifiers_lex() {
        let t = toks("sélect_col täble");
        assert!(matches!(&t[0], Token::Word(w) if w.value == "sélect_col"));
        assert!(matches!(&t[1], Token::Word(w) if w.value == "täble"));
    }

    fn toks_with(sql: &str, dialect: DialectKind) -> Vec<Token> {
        Lexer::tokenize_with(sql, dialect).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn bigquery_hash_comments() {
        let t = toks_with("SELECT # trailing\n a", DialectKind::BigQuery);
        assert_eq!(t.len(), 3);
        // Under every other dialect `#` stays a lex error.
        assert!(Lexer::tokenize_with("SELECT # x", DialectKind::Ansi).is_err());
        assert!(Lexer::tokenize_with("SELECT # x", DialectKind::Snowflake).is_err());
    }

    #[test]
    fn snowflake_double_slash_comments() {
        let t = toks_with("SELECT // trailing\n a", DialectKind::Snowflake);
        assert_eq!(t.len(), 3);
        // Elsewhere `//` is two division operators, not a comment.
        let t = toks_with("a // b", DialectKind::Ansi);
        assert_eq!(t[1], Token::Slash);
        assert_eq!(t[2], Token::Slash);
    }

    #[test]
    fn quoting_styles_follow_the_dialect() {
        // Backticks: BigQuery and permissive ANSI only.
        assert!(matches!(
            &toks_with("`q`", DialectKind::BigQuery)[0],
            Token::Word(w) if w.value == "q" && w.quote == Some('`')
        ));
        assert!(Lexer::tokenize_with("`q`", DialectKind::Postgres).is_err());
        assert!(Lexer::tokenize_with("`q`", DialectKind::TSql).is_err());
        // Brackets: T-SQL and permissive ANSI only.
        assert!(matches!(
            &toks_with("[q]", DialectKind::TSql)[0],
            Token::Word(w) if w.value == "q" && w.quote == Some('[')
        ));
        assert!(Lexer::tokenize_with("[q]", DialectKind::Snowflake).is_err());
        // Double quotes work everywhere.
        for kind in DialectKind::ALL {
            assert!(matches!(
                &toks_with(r#""q""#, kind)[0],
                Token::Word(w) if w.value == "q" && w.quote == Some('"')
            ));
        }
    }

    #[test]
    fn wrong_dialect_quote_errors_carry_spans() {
        let err = Lexer::tokenize_with("SELECT `q` FROM t", DialectKind::Postgres).unwrap_err();
        assert_eq!(err.span.location.line, 1);
        assert_eq!(err.span.location.column, 8);
    }

    #[test]
    fn recovery_works_under_every_dialect() {
        for kind in DialectKind::ALL {
            let (toks, errors) = Lexer::tokenize_recovering_with("SELECT ~bad; SELECT ok", kind);
            assert_eq!(errors.len(), 1);
            assert!(toks.iter().any(|t| matches!(&t.token, Token::Word(w) if w.value == "ok")));
        }
    }
}
