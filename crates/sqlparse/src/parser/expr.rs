//! Pratt (binding-power) expression parser.

use crate::ast::*;
use crate::error::ParseError;
use crate::keywords::Keyword;
use crate::token::Token;

use super::Parser;

// Binding powers, loosely following Postgres operator precedence.
const BP_OR: u8 = 5;
const BP_AND: u8 = 10;
const BP_PREFIX_NOT: u8 = 15;
const BP_IS: u8 = 17;
const BP_LIKE_IN_BETWEEN: u8 = 18;
const BP_COMPARISON: u8 = 20;
const BP_CONCAT: u8 = 25;
const BP_ADDITIVE: u8 = 30;
const BP_MULTIPLICATIVE: u8 = 40;
const BP_PREFIX_SIGN: u8 = 45;
const BP_CARET: u8 = 50;
const BP_CAST: u8 = 60;

/// Interval unit words accepted after an `INTERVAL` literal.
const INTERVAL_UNITS: &[&str] = &[
    "year", "years", "month", "months", "week", "weeks", "day", "days", "hour", "hours", "minute",
    "minutes", "second", "seconds",
];

impl Parser {
    /// Parse a full expression.
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_subexpr(0)
    }

    pub(crate) fn parse_subexpr(&mut self, min_bp: u8) -> Result<Expr, ParseError> {
        self.with_depth(|parser| {
            let mut left = parser.parse_prefix()?;
            loop {
                let bp = parser.peek_infix_bp();
                if bp <= min_bp {
                    break;
                }
                left = parser.parse_infix(left, bp)?;
            }
            Ok(left)
        })
    }

    /// Binding power of the upcoming infix operator, or 0 when the next
    /// token does not continue an expression.
    fn peek_infix_bp(&self) -> u8 {
        match self.peek_token() {
            Token::Word(w) => match w.keyword {
                Some(Keyword::OR) => BP_OR,
                Some(Keyword::AND) => BP_AND,
                Some(Keyword::IS) => BP_IS,
                Some(Keyword::IN)
                | Some(Keyword::BETWEEN)
                | Some(Keyword::LIKE)
                | Some(Keyword::ILIKE) => BP_LIKE_IN_BETWEEN,
                Some(Keyword::NOT) => match self.peek_nth(1) {
                    Token::Word(w2) => match w2.keyword {
                        Some(Keyword::IN)
                        | Some(Keyword::BETWEEN)
                        | Some(Keyword::LIKE)
                        | Some(Keyword::ILIKE) => BP_LIKE_IN_BETWEEN,
                        _ => 0,
                    },
                    _ => 0,
                },
                _ => 0,
            },
            Token::Eq | Token::Neq | Token::Lt | Token::Gt | Token::LtEq | Token::GtEq => {
                BP_COMPARISON
            }
            Token::Concat => BP_CONCAT,
            Token::Plus | Token::Minus => BP_ADDITIVE,
            Token::Star | Token::Slash | Token::Percent => BP_MULTIPLICATIVE,
            Token::Caret => BP_CARET,
            Token::DoubleColon => BP_CAST,
            _ => 0,
        }
    }

    fn parse_infix(&mut self, left: Expr, bp: u8) -> Result<Expr, ParseError> {
        let tok = self.next_token();
        macro_rules! binop {
            ($op:expr) => {{
                let right = self.parse_subexpr(bp)?;
                Ok(Expr::BinaryOp { left: Box::new(left), op: $op, right: Box::new(right) })
            }};
        }
        match tok {
            Token::Word(w) => match w.keyword {
                Some(Keyword::OR) => binop!(BinaryOperator::Or),
                Some(Keyword::AND) => binop!(BinaryOperator::And),
                Some(Keyword::IS) => {
                    let negated = self.parse_keyword(Keyword::NOT);
                    if self.parse_keyword(Keyword::DISTINCT) {
                        self.expect_keyword(Keyword::FROM)?;
                        let right = self.parse_subexpr(bp)?;
                        Ok(Expr::IsDistinctFrom {
                            left: Box::new(left),
                            right: Box::new(right),
                            negated,
                        })
                    } else {
                        self.expect_keyword(Keyword::NULL)?;
                        Ok(Expr::IsNull { expr: Box::new(left), negated })
                    }
                }
                Some(Keyword::NOT) => {
                    if self.parse_keyword(Keyword::IN) {
                        self.parse_in_tail(left, true)
                    } else if self.parse_keyword(Keyword::BETWEEN) {
                        self.parse_between_tail(left, true)
                    } else if self.parse_keyword(Keyword::LIKE) {
                        self.parse_like_tail(left, true, false)
                    } else if self.parse_keyword(Keyword::ILIKE) {
                        self.parse_like_tail(left, true, true)
                    } else {
                        Err(self.error_here("expected IN, BETWEEN, LIKE or ILIKE after NOT"))
                    }
                }
                Some(Keyword::IN) => self.parse_in_tail(left, false),
                Some(Keyword::BETWEEN) => self.parse_between_tail(left, false),
                Some(Keyword::LIKE) => self.parse_like_tail(left, false, false),
                Some(Keyword::ILIKE) => self.parse_like_tail(left, false, true),
                _ => Err(self.error_here(format!("unexpected word {} in expression", w.value))),
            },
            Token::Eq | Token::Neq | Token::Lt | Token::Gt | Token::LtEq | Token::GtEq => {
                let op = match tok {
                    Token::Eq => BinaryOperator::Eq,
                    Token::Neq => BinaryOperator::NotEq,
                    Token::Lt => BinaryOperator::Lt,
                    Token::Gt => BinaryOperator::Gt,
                    Token::LtEq => BinaryOperator::LtEq,
                    _ => BinaryOperator::GtEq,
                };
                // `= ANY (subquery)` / `<> ALL (subquery)` quantified forms.
                if let Some(kw) =
                    self.parse_one_of_keywords(&[Keyword::ANY, Keyword::SOME, Keyword::ALL])
                {
                    self.expect_token(&Token::LParen)?;
                    let subquery = Box::new(self.parse_query()?);
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::QuantifiedComparison {
                        expr: Box::new(left),
                        op,
                        all: kw == Keyword::ALL,
                        subquery,
                    });
                }
                let right = self.parse_subexpr(bp)?;
                Ok(Expr::BinaryOp { left: Box::new(left), op, right: Box::new(right) })
            }
            Token::Concat => binop!(BinaryOperator::Concat),
            Token::Plus => binop!(BinaryOperator::Plus),
            Token::Minus => binop!(BinaryOperator::Minus),
            Token::Star => binop!(BinaryOperator::Multiply),
            Token::Slash => binop!(BinaryOperator::Divide),
            Token::Percent => binop!(BinaryOperator::Modulo),
            Token::Caret => binop!(BinaryOperator::Caret),
            Token::DoubleColon => {
                let data_type = self.parse_data_type()?;
                Ok(Expr::Cast { expr: Box::new(left), data_type, postgres_style: true })
            }
            other => Err(self.error_here(format!("unexpected token {other} in expression"))),
        }
    }

    fn parse_in_tail(&mut self, left: Expr, negated: bool) -> Result<Expr, ParseError> {
        self.expect_token(&Token::LParen)?;
        if matches!(
            self.peek_token(),
            t if t.is_keyword(Keyword::SELECT) || t.is_keyword(Keyword::WITH)
        ) {
            let subquery = Box::new(self.parse_query()?);
            self.expect_token(&Token::RParen)?;
            Ok(Expr::InSubquery { expr: Box::new(left), subquery, negated })
        } else {
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            Ok(Expr::InList { expr: Box::new(left), list, negated })
        }
    }

    fn parse_between_tail(&mut self, left: Expr, negated: bool) -> Result<Expr, ParseError> {
        let low = self.parse_subexpr(BP_LIKE_IN_BETWEEN)?;
        self.expect_keyword(Keyword::AND)?;
        let high = self.parse_subexpr(BP_LIKE_IN_BETWEEN)?;
        Ok(Expr::Between {
            expr: Box::new(left),
            negated,
            low: Box::new(low),
            high: Box::new(high),
        })
    }

    fn parse_like_tail(
        &mut self,
        left: Expr,
        negated: bool,
        case_insensitive: bool,
    ) -> Result<Expr, ParseError> {
        let pattern = self.parse_subexpr(BP_LIKE_IN_BETWEEN)?;
        Ok(Expr::Like {
            expr: Box::new(left),
            negated,
            pattern: Box::new(pattern),
            case_insensitive,
        })
    }

    fn parse_prefix(&mut self) -> Result<Expr, ParseError> {
        match self.peek_token().clone() {
            Token::Word(w) => match w.keyword {
                Some(Keyword::TRUE) => {
                    self.next_token();
                    Ok(Expr::Literal(Literal::Boolean(true)))
                }
                Some(Keyword::FALSE) => {
                    self.next_token();
                    Ok(Expr::Literal(Literal::Boolean(false)))
                }
                Some(Keyword::NULL) => {
                    self.next_token();
                    Ok(Expr::Literal(Literal::Null))
                }
                Some(Keyword::CASE) => self.parse_case(),
                Some(Keyword::CAST) => self.parse_cast(),
                Some(Keyword::EXTRACT) => self.parse_extract(),
                Some(Keyword::SUBSTRING) => self.parse_substring(),
                Some(Keyword::TRIM) => self.parse_trim(),
                Some(Keyword::POSITION) => self.parse_position(),
                Some(Keyword::INTERVAL) => self.parse_interval(),
                Some(Keyword::EXISTS) => {
                    self.next_token();
                    self.expect_token(&Token::LParen)?;
                    let subquery = Box::new(self.parse_query()?);
                    self.expect_token(&Token::RParen)?;
                    Ok(Expr::Exists { subquery, negated: false })
                }
                Some(Keyword::NOT) => {
                    self.next_token();
                    if self.peek_token().is_keyword(Keyword::EXISTS) {
                        self.next_token();
                        self.expect_token(&Token::LParen)?;
                        let subquery = Box::new(self.parse_query()?);
                        self.expect_token(&Token::RParen)?;
                        Ok(Expr::Exists { subquery, negated: true })
                    } else {
                        let expr = self.parse_subexpr(BP_PREFIX_NOT)?;
                        Ok(Expr::UnaryOp { op: UnaryOperator::Not, expr: Box::new(expr) })
                    }
                }
                _ => self.parse_word_prefix(),
            },
            Token::Number(n) => {
                self.next_token();
                Ok(Expr::Literal(Literal::Number(n)))
            }
            Token::SingleQuotedString(s) | Token::NationalString(s) => {
                self.next_token();
                Ok(Expr::Literal(Literal::String(s)))
            }
            Token::Placeholder(p) => {
                self.next_token();
                Ok(Expr::Placeholder(p))
            }
            Token::Minus => {
                self.next_token();
                let expr = self.parse_subexpr(BP_PREFIX_SIGN)?;
                Ok(Expr::UnaryOp { op: UnaryOperator::Minus, expr: Box::new(expr) })
            }
            Token::Plus => {
                self.next_token();
                let expr = self.parse_subexpr(BP_PREFIX_SIGN)?;
                Ok(Expr::UnaryOp { op: UnaryOperator::Plus, expr: Box::new(expr) })
            }
            Token::LParen => {
                self.next_token();
                if matches!(
                    self.peek_token(),
                    t if t.is_keyword(Keyword::SELECT) || t.is_keyword(Keyword::WITH)
                ) {
                    let query = Box::new(self.parse_query()?);
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::Subquery(query));
                }
                let first = self.parse_expr()?;
                if self.consume_token(&Token::Comma) {
                    let mut items = vec![first];
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.consume_token(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect_token(&Token::RParen)?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.expect_token(&Token::RParen)?;
                    Ok(Expr::Nested(Box::new(first)))
                }
            }
            other => Err(self.error_here(format!("expected expression, found {other}"))),
        }
    }

    /// Identifier chain or function call.
    fn parse_word_prefix(&mut self) -> Result<Expr, ParseError> {
        let mut parts = vec![self.parse_identifier()?];
        while self.peek_token() == &Token::Period {
            // `t.*` is not an expression; leave the period for the caller
            // (projection / function-arg parsing handles wildcards).
            if self.peek_nth(1) == &Token::Star {
                break;
            }
            self.next_token();
            parts.push(self.parse_identifier()?);
        }
        if self.peek_token() == &Token::LParen {
            return self.parse_function(ObjectName(parts));
        }
        if parts.len() == 1 {
            Ok(Expr::Identifier(parts.pop().expect("one part")))
        } else {
            Ok(Expr::CompoundIdentifier(parts))
        }
    }

    fn parse_function(&mut self, name: ObjectName) -> Result<Expr, ParseError> {
        self.expect_token(&Token::LParen)?;
        let distinct = self.parse_keyword(Keyword::DISTINCT);
        let mut args = Vec::new();
        if !self.consume_token(&Token::RParen) {
            loop {
                args.push(self.parse_function_arg()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        let filter = if self.parse_keyword(Keyword::FILTER) {
            self.expect_token(&Token::LParen)?;
            self.expect_keyword(Keyword::WHERE)?;
            let e = self.parse_expr()?;
            self.expect_token(&Token::RParen)?;
            Some(Box::new(e))
        } else {
            None
        };
        let over = if self.parse_keyword(Keyword::OVER) {
            self.expect_token(&Token::LParen)?;
            let spec = self.parse_window_spec()?;
            self.expect_token(&Token::RParen)?;
            Some(spec)
        } else {
            None
        };
        Ok(Expr::Function(Function { name, args, distinct, filter, over }))
    }

    fn parse_function_arg(&mut self) -> Result<FunctionArg, ParseError> {
        if self.peek_token() == &Token::Star {
            self.next_token();
            return Ok(FunctionArg::Wildcard);
        }
        // Attempt `name(.name)*.*`.
        if matches!(self.peek_token(), Token::Word(_)) {
            let snapshot = self.snapshot();
            if let Ok(name) = self.parse_object_name() {
                if self.peek_token() == &Token::Period && self.peek_nth(1) == &Token::Star {
                    self.next_token();
                    self.next_token();
                    return Ok(FunctionArg::QualifiedWildcard(name));
                }
            }
            self.rollback(snapshot);
        }
        Ok(FunctionArg::Expr(self.parse_expr()?))
    }

    pub(crate) fn parse_window_spec(&mut self) -> Result<WindowSpec, ParseError> {
        let mut spec = WindowSpec::default();
        if self.parse_keywords(&[Keyword::PARTITION, Keyword::BY]) {
            loop {
                spec.partition_by.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.parse_keywords(&[Keyword::ORDER, Keyword::BY]) {
            loop {
                spec.order_by.push(self.parse_order_by_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        let units = if self.parse_keyword(Keyword::ROWS) {
            Some(FrameUnits::Rows)
        } else if self.parse_keyword(Keyword::RANGE) {
            Some(FrameUnits::Range)
        } else {
            None
        };
        if let Some(units) = units {
            let (start, end) = if self.parse_keyword(Keyword::BETWEEN) {
                let start = self.parse_frame_bound()?;
                self.expect_keyword(Keyword::AND)?;
                let end = self.parse_frame_bound()?;
                (start, Some(end))
            } else {
                (self.parse_frame_bound()?, None)
            };
            spec.frame = Some(WindowFrame { units, start, end });
        }
        Ok(spec)
    }

    fn parse_frame_bound(&mut self) -> Result<FrameBound, ParseError> {
        if self.parse_keywords(&[Keyword::CURRENT, Keyword::ROW]) {
            return Ok(FrameBound::CurrentRow);
        }
        if self.parse_keyword(Keyword::UNBOUNDED) {
            return if self.parse_keyword(Keyword::PRECEDING) {
                Ok(FrameBound::Preceding(None))
            } else {
                self.expect_keyword(Keyword::FOLLOWING)?;
                Ok(FrameBound::Following(None))
            };
        }
        match self.next_token() {
            Token::Number(n) => {
                let v = n
                    .parse::<u64>()
                    .map_err(|_| self.error_here(format!("invalid frame offset {n}")))?;
                if self.parse_keyword(Keyword::PRECEDING) {
                    Ok(FrameBound::Preceding(Some(v)))
                } else {
                    self.expect_keyword(Keyword::FOLLOWING)?;
                    Ok(FrameBound::Following(Some(v)))
                }
            }
            other => Err(self.error_here(format!("expected frame bound, found {other}"))),
        }
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword(Keyword::CASE)?;
        let operand = if self.peek_token().is_keyword(Keyword::WHEN) {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut conditions = Vec::new();
        let mut results = Vec::new();
        while self.parse_keyword(Keyword::WHEN) {
            conditions.push(self.parse_expr()?);
            self.expect_keyword(Keyword::THEN)?;
            results.push(self.parse_expr()?);
        }
        if conditions.is_empty() {
            return Err(self.error_here("CASE requires at least one WHEN clause"));
        }
        let else_result = if self.parse_keyword(Keyword::ELSE) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::END)?;
        Ok(Expr::Case { operand, conditions, results, else_result })
    }

    fn parse_cast(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword(Keyword::CAST)?;
        self.expect_token(&Token::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword(Keyword::AS)?;
        let data_type = self.parse_data_type()?;
        self.expect_token(&Token::RParen)?;
        Ok(Expr::Cast { expr: Box::new(expr), data_type, postgres_style: false })
    }

    fn parse_extract(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword(Keyword::EXTRACT)?;
        self.expect_token(&Token::LParen)?;
        let field = match self.next_token() {
            Token::Word(w) => w.value.to_lowercase(),
            Token::SingleQuotedString(s) => s.to_lowercase(),
            other => return Err(self.error_here(format!("expected extract field, found {other}"))),
        };
        self.expect_keyword(Keyword::FROM)?;
        let expr = self.parse_expr()?;
        self.expect_token(&Token::RParen)?;
        Ok(Expr::Extract { field, expr: Box::new(expr) })
    }

    fn parse_substring(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword(Keyword::SUBSTRING)?;
        self.expect_token(&Token::LParen)?;
        let expr = self.parse_expr()?;
        let mut from = None;
        let mut for_len = None;
        if self.parse_keyword(Keyword::FROM) {
            from = Some(Box::new(self.parse_expr()?));
            if self.parse_keyword(Keyword::FOR) {
                for_len = Some(Box::new(self.parse_expr()?));
            }
        } else if self.consume_token(&Token::Comma) {
            // Comma form `substring(s, start [, len])`.
            from = Some(Box::new(self.parse_expr()?));
            if self.consume_token(&Token::Comma) {
                for_len = Some(Box::new(self.parse_expr()?));
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(Expr::Substring { expr: Box::new(expr), from, for_len })
    }

    fn parse_trim(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword(Keyword::TRIM)?;
        self.expect_token(&Token::LParen)?;
        let side = if self.parse_keyword(Keyword::BOTH) {
            TrimSide::Both
        } else if self.parse_keyword(Keyword::LEADING) {
            TrimSide::Leading
        } else if self.parse_keyword(Keyword::TRAILING) {
            TrimSide::Trailing
        } else {
            TrimSide::Both
        };
        if self.parse_keyword(Keyword::FROM) {
            // `TRIM(LEADING FROM s)`.
            let expr = self.parse_expr()?;
            self.expect_token(&Token::RParen)?;
            return Ok(Expr::Trim { expr: Box::new(expr), side, what: None });
        }
        let first = self.parse_expr()?;
        if self.parse_keyword(Keyword::FROM) {
            let expr = self.parse_expr()?;
            self.expect_token(&Token::RParen)?;
            Ok(Expr::Trim { expr: Box::new(expr), side, what: Some(Box::new(first)) })
        } else {
            self.expect_token(&Token::RParen)?;
            Ok(Expr::Trim { expr: Box::new(first), side, what: None })
        }
    }

    fn parse_position(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword(Keyword::POSITION)?;
        self.expect_token(&Token::LParen)?;
        let expr = self.parse_subexpr(BP_LIKE_IN_BETWEEN)?;
        self.expect_keyword(Keyword::IN)?;
        let in_expr = self.parse_expr()?;
        self.expect_token(&Token::RParen)?;
        Ok(Expr::Position { expr: Box::new(expr), in_expr: Box::new(in_expr) })
    }

    fn parse_interval(&mut self) -> Result<Expr, ParseError> {
        self.expect_keyword(Keyword::INTERVAL)?;
        let value = self.parse_subexpr(BP_CARET)?;
        let unit = match self.peek_token() {
            Token::Word(w)
                if w.keyword.is_none()
                    && INTERVAL_UNITS.contains(&w.value.to_lowercase().as_str()) =>
            {
                let unit = w.value.to_lowercase();
                self.next_token();
                Some(unit)
            }
            _ => None,
        };
        Ok(Expr::Interval { value: Box::new(value), unit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    fn expr_of(sql_tail: &str) -> Expr {
        let stmt = parse_statement(&format!("SELECT {sql_tail}")).unwrap();
        let Statement::Query(q) = stmt else { panic!() };
        let SetExpr::Select(sel) = q.body else { panic!() };
        match sel.projection.into_iter().next().unwrap() {
            SelectItem::UnnamedExpr(e) => e,
            other => panic!("expected unnamed expr, got {other:?}"),
        }
    }

    #[test]
    fn precedence_and_or() {
        // a OR b AND c  =>  a OR (b AND c)
        let e = expr_of("a OR b AND c");
        match e {
            Expr::BinaryOp { op: BinaryOperator::Or, right, .. } => {
                assert!(matches!(*right, Expr::BinaryOp { op: BinaryOperator::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_arith() {
        // 1 + 2 * 3  =>  1 + (2 * 3)
        let e = expr_of("1 + 2 * 3");
        match e {
            Expr::BinaryOp { op: BinaryOperator::Plus, right, .. } => {
                assert!(matches!(*right, Expr::BinaryOp { op: BinaryOperator::Multiply, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn left_associativity() {
        // 1 - 2 - 3  =>  (1 - 2) - 3
        let e = expr_of("1 - 2 - 3");
        match e {
            Expr::BinaryOp { op: BinaryOperator::Minus, left, .. } => {
                assert!(matches!(*left, Expr::BinaryOp { op: BinaryOperator::Minus, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparison_with_concat() {
        // a || b = c  =>  (a || b) = c
        let e = expr_of("a || b = c");
        match e {
            Expr::BinaryOp { op: BinaryOperator::Eq, left, .. } => {
                assert!(matches!(*left, Expr::BinaryOp { op: BinaryOperator::Concat, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_tighter_than_multiply() {
        // -2 * 3  =>  (-2) * 3
        let e = expr_of("-2 * 3");
        assert!(matches!(e, Expr::BinaryOp { op: BinaryOperator::Multiply, .. }));
    }

    #[test]
    fn not_binds_looser_than_comparison() {
        // NOT a = b  =>  NOT (a = b)
        let e = expr_of("NOT a = b");
        match e {
            Expr::UnaryOp { op: UnaryOperator::Not, expr } => {
                assert!(matches!(*expr, Expr::BinaryOp { op: BinaryOperator::Eq, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn postgres_cast() {
        let e = expr_of("a::int + 1");
        match e {
            Expr::BinaryOp { op: BinaryOperator::Plus, left, .. } => {
                assert!(matches!(*left, Expr::Cast { postgres_style: true, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn standard_cast() {
        let e = expr_of("CAST(a AS numeric(10, 2))");
        match e {
            Expr::Cast { data_type, postgres_style, .. } => {
                assert_eq!(data_type.name, "numeric");
                assert_eq!(data_type.params, vec![10, 2]);
                assert!(!postgres_style);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_parses() {
        let e = expr_of("a BETWEEN 1 AND 10 AND b");
        // Top must be AND with BETWEEN on the left.
        match e {
            Expr::BinaryOp { op: BinaryOperator::And, left, .. } => {
                assert!(matches!(*left, Expr::Between { negated: false, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_between() {
        let e = expr_of("a NOT BETWEEN 1 AND 10");
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn in_list_and_subquery() {
        assert!(matches!(expr_of("a IN (1, 2, 3)"), Expr::InList { negated: false, .. }));
        assert!(matches!(
            expr_of("a NOT IN (SELECT x FROM t)"),
            Expr::InSubquery { negated: true, .. }
        ));
    }

    #[test]
    fn like_ilike() {
        assert!(matches!(
            expr_of("a LIKE 'x%'"),
            Expr::Like { negated: false, case_insensitive: false, .. }
        ));
        assert!(matches!(
            expr_of("a NOT ILIKE 'x%'"),
            Expr::Like { negated: true, case_insensitive: true, .. }
        ));
    }

    #[test]
    fn is_null_forms() {
        assert!(matches!(expr_of("a IS NULL"), Expr::IsNull { negated: false, .. }));
        assert!(matches!(expr_of("a IS NOT NULL"), Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn exists_forms() {
        assert!(matches!(expr_of("EXISTS (SELECT 1)"), Expr::Exists { negated: false, .. }));
        assert!(matches!(expr_of("NOT EXISTS (SELECT 1)"), Expr::Exists { negated: true, .. }));
    }

    #[test]
    fn quantified_comparison() {
        let e = expr_of("a = ANY (SELECT x FROM t)");
        assert!(matches!(e, Expr::QuantifiedComparison { all: false, .. }));
        let e = expr_of("a <> ALL (SELECT x FROM t)");
        assert!(matches!(e, Expr::QuantifiedComparison { all: true, .. }));
    }

    #[test]
    fn scalar_subquery_vs_nested_vs_tuple() {
        assert!(matches!(expr_of("(SELECT max(x) FROM t)"), Expr::Subquery(_)));
        assert!(matches!(expr_of("(1 + 2)"), Expr::Nested(_)));
        assert!(matches!(expr_of("(1, 2, 3)"), Expr::Tuple(ref v) if v.len() == 3));
    }

    #[test]
    fn case_forms() {
        let e = expr_of("CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END");
        match e {
            Expr::Case { operand: None, conditions, results, else_result } => {
                assert_eq!(conditions.len(), 2);
                assert_eq!(results.len(), 2);
                assert!(else_result.is_some());
            }
            other => panic!("{other:?}"),
        }
        let e = expr_of("CASE x WHEN 1 THEN 'a' END");
        assert!(matches!(e, Expr::Case { operand: Some(_), .. }));
    }

    #[test]
    fn case_without_when_errors() {
        assert!(parse_statement("SELECT CASE END").is_err());
    }

    #[test]
    fn extract_year() {
        let e = expr_of("EXTRACT(YEAR FROM w.date)");
        match e {
            Expr::Extract { field, .. } => assert_eq!(field, "year"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn substring_both_forms() {
        assert!(matches!(
            expr_of("SUBSTRING(a FROM 1 FOR 3)"),
            Expr::Substring { from: Some(_), for_len: Some(_), .. }
        ));
        assert!(matches!(
            expr_of("substring(a, 1, 3)"),
            Expr::Substring { from: Some(_), for_len: Some(_), .. }
        ));
    }

    #[test]
    fn trim_forms() {
        assert!(matches!(expr_of("TRIM(a)"), Expr::Trim { side: TrimSide::Both, what: None, .. }));
        assert!(matches!(
            expr_of("TRIM(LEADING ' ' FROM a)"),
            Expr::Trim { side: TrimSide::Leading, what: Some(_), .. }
        ));
        assert!(matches!(
            expr_of("TRIM(TRAILING FROM a)"),
            Expr::Trim { side: TrimSide::Trailing, what: None, .. }
        ));
    }

    #[test]
    fn position_form() {
        assert!(matches!(expr_of("POSITION('x' IN a)"), Expr::Position { .. }));
    }

    #[test]
    fn interval_literal() {
        let e = expr_of("INTERVAL '1 day'");
        assert!(matches!(e, Expr::Interval { unit: None, .. }));
        let e = expr_of("INTERVAL '1' day");
        assert!(matches!(e, Expr::Interval { unit: Some(ref u), .. } if u == "day"));
    }

    #[test]
    fn function_calls() {
        let e = expr_of("count(*)");
        match e {
            Expr::Function(f) => {
                assert_eq!(f.name.base_name(), "count");
                assert!(matches!(f.args[0], FunctionArg::Wildcard));
            }
            other => panic!("{other:?}"),
        }
        let e = expr_of("count(DISTINCT a)");
        assert!(matches!(e, Expr::Function(ref f) if f.distinct));
        let e = expr_of("count(t.*)");
        assert!(
            matches!(e, Expr::Function(ref f) if matches!(f.args[0], FunctionArg::QualifiedWildcard(_)))
        );
    }

    #[test]
    fn window_function() {
        let e = expr_of(
            "sum(x) FILTER (WHERE x > 0) OVER (PARTITION BY d ORDER BY t ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)",
        );
        match e {
            Expr::Function(f) => {
                assert!(f.filter.is_some());
                let over = f.over.unwrap();
                assert_eq!(over.partition_by.len(), 1);
                assert_eq!(over.order_by.len(), 1);
                let frame = over.frame.unwrap();
                assert_eq!(frame.units, FrameUnits::Rows);
                assert_eq!(frame.start, FrameBound::Preceding(Some(1)));
                assert_eq!(frame.end, Some(FrameBound::CurrentRow));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn compound_identifiers() {
        assert!(matches!(expr_of("a.b.c"), Expr::CompoundIdentifier(ref p) if p.len() == 3));
        assert!(matches!(expr_of("a"), Expr::Identifier(_)));
    }

    #[test]
    fn schema_qualified_function() {
        let e = expr_of("pg_catalog.lower(a)");
        assert!(matches!(e, Expr::Function(ref f) if f.name.full_name() == "pg_catalog.lower"));
    }

    #[test]
    fn placeholders() {
        assert!(matches!(expr_of("?"), Expr::Placeholder(ref p) if p == "?"));
        assert!(matches!(expr_of("$2"), Expr::Placeholder(ref p) if p == "$2"));
    }

    #[test]
    fn deeply_nested_expression_within_limit() {
        let depth = 50;
        let sql = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let e = expr_of(&sql);
        assert!(matches!(e, Expr::Nested(_)));
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let depth = 10_000;
        let sql = format!("SELECT {}1{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse_statement(&sql).unwrap_err();
        assert!(err.message.contains("too deep"), "{err}");
    }
}
