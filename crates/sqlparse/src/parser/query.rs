//! Query, select, and join parsing.

use crate::ast::*;
use crate::error::ParseError;
use crate::keywords::Keyword;
use crate::token::Token;

use super::Parser;

/// Set-operator precedence: `INTERSECT` binds tighter than `UNION`/`EXCEPT`.
fn set_op_precedence(op: SetOperator) -> u8 {
    match op {
        SetOperator::Intersect => 20,
        SetOperator::Union | SetOperator::Except => 10,
    }
}

impl Parser {
    /// Parse a full query (`WITH ... body ORDER BY ... LIMIT ...`).
    pub fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.with_depth(Self::parse_query_inner)
    }

    fn parse_query_inner(&mut self) -> Result<Query, ParseError> {
        let with = if self.peek_token().is_keyword(Keyword::WITH) {
            Some(self.parse_with()?)
        } else {
            None
        };
        let body = self.parse_set_expr(0)?;
        let mut order_by = Vec::new();
        if self.parse_keywords(&[Keyword::ORDER, Keyword::BY]) {
            loop {
                order_by.push(self.parse_order_by_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.parse_keyword(Keyword::LIMIT) {
            if self.parse_keyword(Keyword::ALL) {
                None
            } else {
                Some(self.parse_expr()?)
            }
        } else {
            None
        };
        let offset = if self.parse_keyword(Keyword::OFFSET) {
            let e = self.parse_expr()?;
            // Optional ROW/ROWS noise word.
            let _ = self.parse_one_of_keywords(&[Keyword::ROW, Keyword::ROWS]);
            Some(e)
        } else {
            None
        };
        // `FETCH { FIRST | NEXT } [n] { ROW | ROWS } ONLY` — the standard
        // spelling of LIMIT; normalised into `limit`.
        let limit = if self.parse_keyword(Keyword::FETCH) {
            if limit.is_some() {
                return Err(self.error_here("cannot combine LIMIT and FETCH"));
            }
            if self.parse_one_of_keywords(&[Keyword::FIRST, Keyword::NEXT]).is_none() {
                return Err(self.error_here("expected FIRST or NEXT after FETCH"));
            }
            let count = match self.peek_token() {
                Token::Number(_) => Some(self.parse_expr()?),
                _ => None, // bare `FETCH FIRST ROW ONLY` means 1
            };
            if self.parse_one_of_keywords(&[Keyword::ROW, Keyword::ROWS]).is_none() {
                return Err(self.error_here("expected ROW or ROWS in FETCH clause"));
            }
            self.expect_keyword(Keyword::ONLY)?;
            Some(count.unwrap_or(Expr::Literal(Literal::Number("1".into()))))
        } else {
            limit
        };
        Ok(Query { with, body, order_by, limit, offset })
    }

    fn parse_with(&mut self) -> Result<With, ParseError> {
        self.expect_keyword(Keyword::WITH)?;
        let recursive = self.parse_keyword(Keyword::RECURSIVE);
        let mut ctes = Vec::new();
        loop {
            let name = self.parse_identifier()?;
            let columns = if self.peek_token() == &Token::LParen {
                self.parse_paren_ident_list()?
            } else {
                Vec::new()
            };
            self.expect_keyword(Keyword::AS)?;
            self.expect_token(&Token::LParen)?;
            let query = Box::new(self.parse_query()?);
            self.expect_token(&Token::RParen)?;
            ctes.push(Cte { alias: TableAlias { name, columns }, query });
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }
        Ok(With { recursive, ctes })
    }

    /// Parse a set-expression with operator precedence
    /// (`INTERSECT` > `UNION` = `EXCEPT`, all left-associative).
    pub(crate) fn parse_set_expr(&mut self, min_precedence: u8) -> Result<SetExpr, ParseError> {
        let mut left = self.parse_set_operand()?;
        loop {
            let op = match self.peek_token() {
                t if t.is_keyword(Keyword::UNION) => SetOperator::Union,
                t if t.is_keyword(Keyword::INTERSECT) => SetOperator::Intersect,
                t if t.is_keyword(Keyword::EXCEPT) => SetOperator::Except,
                _ => break,
            };
            let precedence = set_op_precedence(op);
            if precedence <= min_precedence {
                break;
            }
            self.next_token();
            let all = self.parse_keyword(Keyword::ALL);
            if !all {
                // `UNION DISTINCT` is the explicit spelling of the default.
                let _ = self.parse_keyword(Keyword::DISTINCT);
            }
            let right = self.parse_set_expr(precedence)?;
            left = SetExpr::SetOperation { op, all, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_set_operand(&mut self) -> Result<SetExpr, ParseError> {
        match self.peek_token() {
            t if t.is_keyword(Keyword::SELECT) => {
                Ok(SetExpr::Select(Box::new(self.parse_select()?)))
            }
            t if t.is_keyword(Keyword::VALUES) => {
                self.next_token();
                let mut rows = Vec::new();
                loop {
                    self.expect_token(&Token::LParen)?;
                    let mut row = Vec::new();
                    loop {
                        row.push(self.parse_expr()?);
                        if !self.consume_token(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect_token(&Token::RParen)?;
                    rows.push(row);
                    if !self.consume_token(&Token::Comma) {
                        break;
                    }
                }
                Ok(SetExpr::Values(Values(rows)))
            }
            Token::LParen => {
                self.next_token();
                let query = self.parse_query()?;
                self.expect_token(&Token::RParen)?;
                Ok(SetExpr::Query(Box::new(query)))
            }
            other => Err(self.error_here(format!("expected SELECT, VALUES or (, found {other}"))),
        }
    }

    /// Parse a `SELECT` block (no set operators, no ORDER BY).
    pub fn parse_select(&mut self) -> Result<Select, ParseError> {
        self.expect_keyword(Keyword::SELECT)?;
        let distinct = if self.parse_keyword(Keyword::DISTINCT) {
            if self.parse_keyword(Keyword::ON) {
                self.expect_token(&Token::LParen)?;
                let mut exprs = Vec::new();
                loop {
                    exprs.push(self.parse_expr()?);
                    if !self.consume_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
                Some(Distinct::On(exprs))
            } else {
                Some(Distinct::Distinct)
            }
        } else {
            let _ = self.parse_keyword(Keyword::ALL);
            None
        };

        // T-SQL `TOP n` / `TOP (n)`, dialect-gated. Speculative: `TOP`
        // is not reserved, so `SELECT top FROM t` must keep `top` as a
        // plain projected column — only a following number (possibly
        // parenthesised) commits the clause.
        // The count is consumed as a bare literal, not via `parse_expr`,
        // so `TOP 5 * FROM t` cannot be misread as the product `5 * FROM`.
        let mut top = None;
        if self.dialect.supports_top() && self.peek_token().is_keyword(Keyword::TOP) {
            let snapshot = self.snapshot();
            self.next_token();
            match self.peek_token().clone() {
                Token::Number(n) => {
                    self.next_token();
                    top = Some(Expr::Literal(Literal::Number(n)));
                }
                Token::LParen
                    if matches!(self.peek_nth(1), Token::Number(_))
                        && self.peek_nth(2) == &Token::RParen =>
                {
                    self.next_token();
                    let Token::Number(n) = self.next_token() else { unreachable!() };
                    self.next_token();
                    top = Some(Expr::Nested(Box::new(Expr::Literal(Literal::Number(n)))));
                }
                _ => self.rollback(snapshot),
            }
        }

        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        if self.parse_keyword(Keyword::FROM) {
            loop {
                from.push(self.parse_table_with_joins()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }

        let selection =
            if self.parse_keyword(Keyword::WHERE) { Some(self.parse_expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.parse_keywords(&[Keyword::GROUP, Keyword::BY]) {
            loop {
                group_by.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }

        let having =
            if self.parse_keyword(Keyword::HAVING) { Some(self.parse_expr()?) } else { None };

        // Snowflake/BigQuery window-filter clause, dialect-gated.
        let qualify = if self.dialect.supports_qualify() && self.parse_keyword(Keyword::QUALIFY) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        Ok(Select { distinct, top, projection, from, selection, group_by, having, qualify })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.consume_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Attempt `name(.name)*.*` — a qualified wildcard.
        if matches!(self.peek_token(), Token::Word(_)) {
            let snapshot = self.snapshot();
            if let Ok(name) = self.parse_object_name() {
                if self.peek_token() == &Token::Period && self.peek_nth(1) == &Token::Star {
                    self.next_token();
                    self.next_token();
                    return Ok(SelectItem::QualifiedWildcard(name));
                }
            }
            self.rollback(snapshot);
        }
        let expr = self.parse_expr()?;
        match self.parse_optional_alias()? {
            Some(alias) => Ok(SelectItem::ExprWithAlias { expr, alias }),
            None => Ok(SelectItem::UnnamedExpr(expr)),
        }
    }

    pub(crate) fn parse_order_by_expr(&mut self) -> Result<OrderByExpr, ParseError> {
        let expr = self.parse_expr()?;
        let asc = if self.parse_keyword(Keyword::ASC) {
            Some(true)
        } else if self.parse_keyword(Keyword::DESC) {
            Some(false)
        } else {
            None
        };
        let nulls_first = if self.parse_keyword(Keyword::NULLS) {
            if self.parse_keyword(Keyword::FIRST) {
                Some(true)
            } else {
                self.expect_keyword(Keyword::LAST)?;
                Some(false)
            }
        } else {
            None
        };
        Ok(OrderByExpr { expr, asc, nulls_first })
    }

    pub(crate) fn parse_table_with_joins(&mut self) -> Result<TableWithJoins, ParseError> {
        let relation = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let join_operator = if self.parse_keyword(Keyword::NATURAL) {
                let kind = self.parse_one_of_keywords(&[
                    Keyword::INNER,
                    Keyword::LEFT,
                    Keyword::RIGHT,
                    Keyword::FULL,
                ]);
                if matches!(kind, Some(Keyword::LEFT) | Some(Keyword::RIGHT) | Some(Keyword::FULL))
                {
                    let _ = self.parse_keyword(Keyword::OUTER);
                }
                self.expect_keyword(Keyword::JOIN)?;
                match kind {
                    Some(Keyword::LEFT) => JoinOperator::LeftOuter(JoinConstraint::Natural),
                    Some(Keyword::RIGHT) => JoinOperator::RightOuter(JoinConstraint::Natural),
                    Some(Keyword::FULL) => JoinOperator::FullOuter(JoinConstraint::Natural),
                    _ => JoinOperator::Inner(JoinConstraint::Natural),
                }
            } else if self.parse_keywords(&[Keyword::CROSS, Keyword::JOIN]) {
                JoinOperator::CrossJoin
            } else if self.parse_keyword(Keyword::JOIN) {
                JoinOperator::Inner(JoinConstraint::None)
            } else if self.parse_keyword(Keyword::INNER) {
                self.expect_keyword(Keyword::JOIN)?;
                JoinOperator::Inner(JoinConstraint::None)
            } else if self.parse_keyword(Keyword::LEFT) {
                let _ = self.parse_keyword(Keyword::OUTER);
                self.expect_keyword(Keyword::JOIN)?;
                JoinOperator::LeftOuter(JoinConstraint::None)
            } else if self.parse_keyword(Keyword::RIGHT) {
                let _ = self.parse_keyword(Keyword::OUTER);
                self.expect_keyword(Keyword::JOIN)?;
                JoinOperator::RightOuter(JoinConstraint::None)
            } else if self.parse_keyword(Keyword::FULL) {
                let _ = self.parse_keyword(Keyword::OUTER);
                self.expect_keyword(Keyword::JOIN)?;
                JoinOperator::FullOuter(JoinConstraint::None)
            } else {
                break;
            };

            let relation = self.parse_table_factor()?;

            let join_operator = match join_operator {
                JoinOperator::CrossJoin => JoinOperator::CrossJoin,
                JoinOperator::Inner(JoinConstraint::Natural) => {
                    JoinOperator::Inner(JoinConstraint::Natural)
                }
                JoinOperator::LeftOuter(JoinConstraint::Natural) => {
                    JoinOperator::LeftOuter(JoinConstraint::Natural)
                }
                JoinOperator::RightOuter(JoinConstraint::Natural) => {
                    JoinOperator::RightOuter(JoinConstraint::Natural)
                }
                JoinOperator::FullOuter(JoinConstraint::Natural) => {
                    JoinOperator::FullOuter(JoinConstraint::Natural)
                }
                other => {
                    let constraint = self.parse_join_constraint()?;
                    match other {
                        JoinOperator::Inner(_) => JoinOperator::Inner(constraint),
                        JoinOperator::LeftOuter(_) => JoinOperator::LeftOuter(constraint),
                        JoinOperator::RightOuter(_) => JoinOperator::RightOuter(constraint),
                        JoinOperator::FullOuter(_) => JoinOperator::FullOuter(constraint),
                        JoinOperator::CrossJoin => JoinOperator::CrossJoin,
                    }
                }
            };
            joins.push(Join { relation, join_operator });
        }
        Ok(TableWithJoins { relation, joins })
    }

    fn parse_join_constraint(&mut self) -> Result<JoinConstraint, ParseError> {
        if self.parse_keyword(Keyword::ON) {
            Ok(JoinConstraint::On(self.parse_expr()?))
        } else if self.parse_keyword(Keyword::USING) {
            Ok(JoinConstraint::Using(self.parse_paren_ident_list()?))
        } else {
            Ok(JoinConstraint::None)
        }
    }

    fn parse_table_factor(&mut self) -> Result<TableFactor, ParseError> {
        if self.parse_keyword(Keyword::LATERAL) {
            self.expect_token(&Token::LParen)?;
            let subquery = Box::new(self.parse_query()?);
            self.expect_token(&Token::RParen)?;
            let alias = self.parse_optional_table_alias()?;
            return Ok(TableFactor::Derived { lateral: true, subquery, alias });
        }
        if self.peek_token() == &Token::LParen {
            // Either a derived table `(SELECT ...)` or a nested join
            // `(a JOIN b ON ...)`. Decide by what follows the paren.
            let snapshot = self.snapshot();
            self.next_token();
            let is_query = matches!(
                self.peek_token(),
                t if t.is_keyword(Keyword::SELECT) || t.is_keyword(Keyword::WITH) || t.is_keyword(Keyword::VALUES)
            );
            if is_query {
                let subquery = Box::new(self.parse_query()?);
                self.expect_token(&Token::RParen)?;
                let alias = self.parse_optional_table_alias()?;
                return Ok(TableFactor::Derived { lateral: false, subquery, alias });
            }
            if self.peek_token() == &Token::LParen {
                // Could be `((SELECT ...))` or `((a JOIN b) JOIN c)`; re-parse
                // from the start as a nested join, falling back to a derived
                // table on failure.
                self.rollback(snapshot);
                self.next_token();
                if let Ok(twj) = self.parse_table_with_joins() {
                    self.expect_token(&Token::RParen)?;
                    return Ok(TableFactor::NestedJoin(Box::new(twj)));
                }
                self.rollback(snapshot);
                self.next_token();
                let subquery = Box::new(self.parse_query()?);
                self.expect_token(&Token::RParen)?;
                let alias = self.parse_optional_table_alias()?;
                return Ok(TableFactor::Derived { lateral: false, subquery, alias });
            }
            let twj = self.parse_table_with_joins()?;
            self.expect_token(&Token::RParen)?;
            return Ok(TableFactor::NestedJoin(Box::new(twj)));
        }
        let name = self.parse_object_name()?;
        let alias = self.parse_optional_table_alias()?;
        Ok(TableFactor::Table { name, alias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    fn parse_query_of(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => *q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    fn select_of(sql: &str) -> Select {
        match parse_query_of(sql).body {
            SetExpr::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    fn select_of_dialect(sql: &str, dialect: crate::dialect::DialectKind) -> Select {
        let mut stmts = Parser::parse_sql_with(sql, dialect).unwrap();
        match stmts.remove(0) {
            Statement::Query(q) => match q.body {
                SetExpr::Select(s) => *s,
                other => panic!("expected select, got {other:?}"),
            },
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn tsql_top_parses_and_roundtrips() {
        use crate::dialect::DialectKind;
        let s = select_of_dialect("SELECT TOP 5 * FROM t", DialectKind::TSql);
        assert_eq!(s.top, Some(Expr::Literal(Literal::Number("5".into()))));
        assert_eq!(s.to_string(), "SELECT TOP 5 * FROM t");
        // Parenthesised count.
        let s = select_of_dialect("SELECT TOP (10) a FROM t", DialectKind::TSql);
        assert!(matches!(s.top, Some(Expr::Nested(_))));
        // `top` as a plain column survives, even under T-SQL.
        let s = select_of_dialect("SELECT top FROM t", DialectKind::TSql);
        assert!(s.top.is_none());
        assert!(
            matches!(&s.projection[0], SelectItem::UnnamedExpr(Expr::Identifier(i)) if i.value == "top")
        );
        // Under ANSI, `TOP 5` is a syntax error (5 cannot follow the
        // projected column `top`), caught at end-of-statement checking.
        assert!(Parser::parse_sql_with("SELECT TOP 5 * FROM t", DialectKind::Ansi).is_err());
    }

    #[test]
    fn qualify_parses_under_snowflake_and_bigquery() {
        use crate::dialect::DialectKind;
        let sql = "SELECT a, row_number() OVER (PARTITION BY a ORDER BY b) AS rn \
                   FROM t QUALIFY rn = 1";
        for kind in [DialectKind::Snowflake, DialectKind::BigQuery] {
            let s = select_of_dialect(sql, kind);
            assert!(s.qualify.is_some(), "{kind}");
            assert!(s.to_string().contains("QUALIFY rn = 1"));
        }
        // QUALIFY is reserved, so ANSI fails cleanly instead of taking it
        // as an alias.
        assert!(Parser::parse_sql_with(sql, DialectKind::Ansi).is_err());
        assert!(Parser::parse_sql_with(sql, DialectKind::Postgres).is_err());
    }

    #[test]
    fn merge_parses_shallowly_under_supporting_dialects() {
        use crate::dialect::DialectKind;
        let sql = "MERGE INTO tgt USING src ON tgt.id = src.id \
                   WHEN MATCHED THEN UPDATE SET v = src.v";
        for kind in [
            DialectKind::Postgres,
            DialectKind::Snowflake,
            DialectKind::BigQuery,
            DialectKind::TSql,
        ] {
            let mut stmts = Parser::parse_sql_with(sql, kind).unwrap();
            match stmts.remove(0) {
                Statement::Merge(m) => {
                    assert_eq!(m.target.base_name(), "tgt");
                    assert!(m.text.starts_with("MERGE INTO tgt"));
                }
                other => panic!("expected merge, got {other:?}"),
            }
        }
        // ANSI does not recognise MERGE at all.
        assert!(Parser::parse_sql_with(sql, DialectKind::Ansi).is_err());
    }

    #[test]
    fn parses_projection_variants() {
        let s = select_of("SELECT *, w.*, a, b AS bb, c cc FROM t AS w");
        assert_eq!(s.projection.len(), 5);
        assert!(matches!(s.projection[0], SelectItem::Wildcard));
        assert!(
            matches!(&s.projection[1], SelectItem::QualifiedWildcard(n) if n.base_name() == "w")
        );
        assert!(
            matches!(&s.projection[3], SelectItem::ExprWithAlias { alias, .. } if alias.value == "bb")
        );
        assert!(
            matches!(&s.projection[4], SelectItem::ExprWithAlias { alias, .. } if alias.value == "cc")
        );
    }

    #[test]
    fn parses_join_chain() {
        let s = select_of(
            "SELECT 1 FROM customers c JOIN orders o ON c.cid = o.cid \
             LEFT JOIN web w USING (cid) CROSS JOIN x NATURAL JOIN y",
        );
        let twj = &s.from[0];
        assert_eq!(twj.joins.len(), 4);
        assert!(matches!(&twj.joins[0].join_operator, JoinOperator::Inner(JoinConstraint::On(_))));
        assert!(matches!(
            &twj.joins[1].join_operator,
            JoinOperator::LeftOuter(JoinConstraint::Using(u)) if u.len() == 1
        ));
        assert!(matches!(&twj.joins[2].join_operator, JoinOperator::CrossJoin));
        assert!(matches!(
            &twj.joins[3].join_operator,
            JoinOperator::Inner(JoinConstraint::Natural)
        ));
    }

    #[test]
    fn parses_comma_separated_from() {
        let s = select_of("SELECT 1 FROM a, b, c");
        assert_eq!(s.from.len(), 3);
    }

    #[test]
    fn parses_derived_table() {
        let s = select_of("SELECT x FROM (SELECT y AS x FROM t) AS sub(x2)");
        match &s.from[0].relation {
            TableFactor::Derived { alias, lateral, .. } => {
                assert!(!lateral);
                let alias = alias.as_ref().unwrap();
                assert_eq!(alias.name.value, "sub");
                assert_eq!(alias.columns.len(), 1);
            }
            other => panic!("expected derived, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_join() {
        let s = select_of("SELECT 1 FROM (a JOIN b ON a.x = b.x) JOIN c ON b.y = c.y");
        assert!(matches!(&s.from[0].relation, TableFactor::NestedJoin(_)));
        assert_eq!(s.from[0].joins.len(), 1);
    }

    #[test]
    fn parses_lateral_derived() {
        let s = select_of("SELECT 1 FROM t, LATERAL (SELECT t.x) l");
        match &s.from[1].relation {
            TableFactor::Derived { lateral, .. } => assert!(lateral),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ctes() {
        let q = parse_query_of(
            "WITH a AS (SELECT 1), b(x) AS (SELECT 2) SELECT * FROM a JOIN b ON true",
        );
        let with = q.with.unwrap();
        assert!(!with.recursive);
        assert_eq!(with.ctes.len(), 2);
        assert_eq!(with.ctes[1].alias.columns.len(), 1);
    }

    #[test]
    fn parses_recursive_cte() {
        let q = parse_query_of(
            "WITH RECURSIVE r AS (SELECT 1 AS n UNION ALL SELECT n + 1 FROM r WHERE n < 10) \
             SELECT * FROM r",
        );
        assert!(q.with.unwrap().recursive);
    }

    #[test]
    fn set_op_precedence_intersect_binds_tighter() {
        let q = parse_query_of("SELECT 1 UNION SELECT 2 INTERSECT SELECT 3");
        match q.body {
            SetExpr::SetOperation { op: SetOperator::Union, right, .. } => {
                assert!(matches!(*right, SetExpr::SetOperation { op: SetOperator::Intersect, .. }));
            }
            other => panic!("expected UNION at top, got {other:?}"),
        }
    }

    #[test]
    fn set_ops_left_associative() {
        let q = parse_query_of("SELECT 1 EXCEPT SELECT 2 EXCEPT SELECT 3");
        match q.body {
            SetExpr::SetOperation { op: SetOperator::Except, left, right, .. } => {
                assert!(matches!(*left, SetExpr::SetOperation { .. }));
                assert!(matches!(*right, SetExpr::Select(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesised_set_operand() {
        let q = parse_query_of("(SELECT 1 UNION SELECT 2) INTERSECT SELECT 3");
        match q.body {
            SetExpr::SetOperation { op: SetOperator::Intersect, left, .. } => {
                assert!(matches!(*left, SetExpr::Query(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn union_all_flag() {
        let q = parse_query_of("SELECT 1 UNION ALL SELECT 2");
        assert!(matches!(q.body, SetExpr::SetOperation { all: true, .. }));
        let q = parse_query_of("SELECT 1 UNION DISTINCT SELECT 2");
        assert!(matches!(q.body, SetExpr::SetOperation { all: false, .. }));
    }

    #[test]
    fn parses_order_limit_offset() {
        let q =
            parse_query_of("SELECT a FROM t ORDER BY a DESC NULLS LAST, b LIMIT 10 OFFSET 5 ROWS");
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].asc, Some(false));
        assert_eq!(q.order_by[0].nulls_first, Some(false));
        assert!(q.limit.is_some());
        assert!(q.offset.is_some());
    }

    #[test]
    fn fetch_first_normalises_to_limit() {
        let q = parse_query_of("SELECT a FROM t OFFSET 5 FETCH NEXT 10 ROWS ONLY");
        assert_eq!(q.limit, Some(Expr::Literal(Literal::Number("10".into()))));
        assert!(q.offset.is_some());
        let q = parse_query_of("SELECT a FROM t FETCH FIRST ROW ONLY");
        assert_eq!(q.limit, Some(Expr::Literal(Literal::Number("1".into()))));
    }

    #[test]
    fn limit_and_fetch_conflict() {
        assert!(parse_statement("SELECT a FROM t LIMIT 5 FETCH FIRST 3 ROWS ONLY").is_err());
    }

    #[test]
    fn is_distinct_from_parses() {
        let s = select_of("SELECT 1 FROM t WHERE a IS DISTINCT FROM b");
        assert!(matches!(s.selection, Some(Expr::IsDistinctFrom { negated: false, .. })));
        let s = select_of("SELECT 1 FROM t WHERE a IS NOT DISTINCT FROM b");
        assert!(matches!(s.selection, Some(Expr::IsDistinctFrom { negated: true, .. })));
    }

    #[test]
    fn parses_group_by_having() {
        let s = select_of("SELECT dept, count(*) FROM emp GROUP BY dept HAVING count(*) > 5");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_distinct_on() {
        let s = select_of("SELECT DISTINCT ON (dept) dept, name FROM emp");
        assert!(matches!(s.distinct, Some(Distinct::On(ref e)) if e.len() == 1));
    }

    #[test]
    fn select_without_from() {
        let s = select_of("SELECT 1 + 1");
        assert!(s.from.is_empty());
    }

    #[test]
    fn three_part_wildcard() {
        let s = select_of("SELECT public.t.* FROM public.t");
        assert!(
            matches!(&s.projection[0], SelectItem::QualifiedWildcard(n) if n.full_name() == "public.t")
        );
    }
}
