//! Recursive-descent SQL parser.
//!
//! Split across three files: this module holds the token cursor, statement
//! dispatch, DDL, and shared helpers; `query.rs` parses queries, selects,
//! and joins; `expr.rs` is the Pratt expression parser.

mod expr;
mod query;

use crate::ast::*;
use crate::dialect::{Dialect, DialectKind};
use crate::error::ParseError;
use crate::keywords::Keyword;
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{SpannedToken, Token, Word};

/// Maximum expression/query nesting depth before the parser gives up with a
/// clean error instead of overflowing the stack on adversarial input.
pub const MAX_PARSE_DEPTH: usize = 100;

/// The outcome of [`Parser::parse_statements_recovering`]: everything that
/// parsed, plus a span-tagged error for every region that did not.
///
/// The two vectors are independent — a log with one corrupt statement
/// yields all its other statements *and* one error. `statements` is in
/// source order; `errors` is in detection order (also source order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredScript {
    /// The statements that parsed, each with its source span.
    pub statements: Vec<SpannedStatement>,
    /// One error per unparsable region, each pointing into the source.
    pub errors: Vec<ParseError>,
}

impl RecoveredScript {
    /// Whether every statement parsed cleanly.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// The parser: a cursor over the token stream.
pub struct Parser {
    tokens: Vec<SpannedToken>,
    index: usize,
    depth: usize,
    dialect: &'static dyn Dialect,
}

impl Parser {
    /// Parse a semicolon-separated script into statements.
    pub fn parse_sql(sql: &str) -> Result<Vec<Statement>, ParseError> {
        Self::parse_sql_with(sql, DialectKind::Ansi)
    }

    /// [`Parser::parse_sql`] under a specific dialect.
    pub fn parse_sql_with(sql: &str, dialect: DialectKind) -> Result<Vec<Statement>, ParseError> {
        Ok(Self::parse_sql_spanned_with(sql, dialect)?.into_iter().map(|s| s.statement).collect())
    }

    /// Parse a semicolon-separated script, keeping each statement's source
    /// span (first to last token, semicolon excluded).
    pub fn parse_sql_spanned(sql: &str) -> Result<Vec<SpannedStatement>, ParseError> {
        Self::parse_sql_spanned_with(sql, DialectKind::Ansi)
    }

    /// [`Parser::parse_sql_spanned`] under a specific dialect.
    pub fn parse_sql_spanned_with(
        sql: &str,
        dialect: DialectKind,
    ) -> Result<Vec<SpannedStatement>, ParseError> {
        let tokens = Lexer::tokenize_with(sql, dialect)?;
        let mut parser = Parser { tokens, index: 0, depth: 0, dialect: dialect.behavior() };
        let mut statements = Vec::new();
        loop {
            while parser.consume_token(&Token::Semicolon) {}
            if parser.peek_token() == &Token::Eof {
                break;
            }
            let start = parser.peek_span();
            let statement = parser.parse_statement()?;
            statements.push(statement.with_span(start.union(&parser.prev_span())));
            match parser.peek_token() {
                Token::Semicolon | Token::Eof => {}
                other => {
                    let msg = format!("expected end of statement, found {other}");
                    return Err(parser.error_here(msg));
                }
            }
        }
        Ok(statements)
    }

    /// Parse a script that may contain corrupt statements, recovering at
    /// statement boundaries instead of aborting.
    ///
    /// Both lexing and parsing recover: a lex error skips to the next `;`
    /// in the raw text, and a parse error records the failure and
    /// resynchronises at the next top-level `;` in the token stream. The
    /// result carries every statement that parsed *and* every span-tagged
    /// error, so callers can extract lineage from the healthy part of a
    /// messy query log while reporting precisely what was skipped.
    pub fn parse_statements_recovering(sql: &str) -> RecoveredScript {
        Self::parse_statements_recovering_with(sql, DialectKind::Ansi)
    }

    /// [`Parser::parse_statements_recovering`] under a specific dialect.
    pub fn parse_statements_recovering_with(sql: &str, dialect: DialectKind) -> RecoveredScript {
        let (tokens, lex_errors) = Lexer::tokenize_recovering_with(sql, dialect);
        let mut script = RecoveredScript { statements: Vec::new(), errors: lex_errors };
        let mut parser = Parser { tokens, index: 0, depth: 0, dialect: dialect.behavior() };
        loop {
            while parser.consume_token(&Token::Semicolon) {}
            if parser.peek_token() == &Token::Eof {
                break;
            }
            let start = parser.peek_span();
            match parser.parse_statement() {
                Ok(statement) => {
                    let span = start.union(&parser.prev_span());
                    match parser.peek_token() {
                        Token::Semicolon | Token::Eof => {
                            script.statements.push(statement.with_span(span));
                        }
                        other => {
                            // The statement parsed but trailing garbage
                            // follows; report the garbage and drop the
                            // statement (its meaning is suspect).
                            let msg = format!("expected end of statement, found {other}");
                            script.errors.push(parser.error_here(msg));
                            parser.skip_to_statement_boundary();
                        }
                    }
                }
                Err(error) => {
                    script.errors.push(error);
                    parser.skip_to_statement_boundary();
                }
            }
        }
        // Lex errors were collected before any parsing; put all errors in
        // source order so reports read top-to-bottom.
        script.errors.sort_by_key(|e| e.span.start);
        script
    }

    /// Advance the cursor to the next `;` (or end of input) so recovery
    /// can resume at the following statement.
    fn skip_to_statement_boundary(&mut self) {
        loop {
            match self.peek_token() {
                Token::Semicolon | Token::Eof => return,
                _ => {
                    self.next_token();
                }
            }
        }
    }

    // ---- token cursor -------------------------------------------------

    pub(crate) fn peek_token(&self) -> &Token {
        self.peek_nth(0)
    }

    pub(crate) fn peek_nth(&self, n: usize) -> &Token {
        self.tokens.get(self.index + n).map(|t| &t.token).unwrap_or(&Token::Eof)
    }

    pub(crate) fn peek_span(&self) -> Span {
        self.tokens
            .get(self.index)
            .map(|t| t.span)
            .or_else(|| self.tokens.last().map(|t| t.span))
            .unwrap_or_default()
    }

    /// The span of the most recently consumed token (the cursor's own
    /// span before any token was consumed).
    pub(crate) fn prev_span(&self) -> Span {
        match self.index.checked_sub(1).and_then(|i| self.tokens.get(i)) {
            Some(t) => t.span,
            None => self.peek_span(),
        }
    }

    pub(crate) fn next_token(&mut self) -> Token {
        let tok = self.tokens.get(self.index).map(|t| t.token.clone()).unwrap_or(Token::Eof);
        if self.index < self.tokens.len() {
            self.index += 1;
        }
        tok
    }

    pub(crate) fn snapshot(&self) -> usize {
        self.index
    }

    pub(crate) fn rollback(&mut self, snapshot: usize) {
        self.index = snapshot;
    }

    pub(crate) fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.peek_span())
    }

    /// Run `f` one nesting level deeper, failing cleanly past
    /// [`MAX_PARSE_DEPTH`]. The depth is restored on both success and error
    /// so speculative parses (snapshot/rollback) stay balanced.
    pub(crate) fn with_depth<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, ParseError>,
    ) -> Result<T, ParseError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(self.error_here("expression or query nesting is too deep"));
        }
        self.depth += 1;
        let result = f(self);
        self.depth -= 1;
        result
    }

    /// Consume the next token if it equals `expected`.
    pub(crate) fn consume_token(&mut self, expected: &Token) -> bool {
        if self.peek_token() == expected {
            self.next_token();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_token(&mut self, expected: &Token) -> Result<(), ParseError> {
        if self.consume_token(expected) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {expected}, found {}", self.peek_token())))
        }
    }

    /// Consume the next token if it is the keyword `kw`.
    pub(crate) fn parse_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek_token().is_keyword(kw) {
            self.next_token();
            true
        } else {
            false
        }
    }

    /// Consume a sequence of keywords atomically (all or none).
    pub(crate) fn parse_keywords(&mut self, kws: &[Keyword]) -> bool {
        let snapshot = self.snapshot();
        for kw in kws {
            if !self.parse_keyword(*kw) {
                self.rollback(snapshot);
                return false;
            }
        }
        true
    }

    /// Consume and return whichever of `kws` comes next, if any.
    pub(crate) fn parse_one_of_keywords(&mut self, kws: &[Keyword]) -> Option<Keyword> {
        for kw in kws {
            if self.parse_keyword(*kw) {
                return Some(*kw);
            }
        }
        None
    }

    pub(crate) fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.parse_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected {}, found {}", kw.as_str(), self.peek_token())))
        }
    }

    // ---- identifiers ---------------------------------------------------

    fn word_to_ident(word: &Word, span: Span) -> Ident {
        if let Some(q) = word.quote {
            let _ = q;
            Ident::quoted(word.value.clone()).with_span(span)
        } else {
            Ident::new(&word.value).with_span(span)
        }
    }

    /// Parse one identifier. Non-reserved keywords are accepted as names.
    pub(crate) fn parse_identifier(&mut self) -> Result<Ident, ParseError> {
        match self.peek_token() {
            Token::Word(w) => {
                let acceptable = match w.keyword {
                    None => true,
                    Some(kw) => !kw.is_reserved_for_alias(),
                };
                if acceptable {
                    let w = w.clone();
                    let span = self.peek_span();
                    self.next_token();
                    Ok(Self::word_to_ident(&w, span))
                } else {
                    Err(self.error_here(format!(
                        "expected identifier, found reserved keyword {}",
                        w.value
                    )))
                }
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    /// Parse a dotted object name (`a`, `a.b`, `a.b.c`).
    ///
    /// A trailing `.` is left unconsumed unless a word follows, so callers
    /// can detect the `name.*` wildcard form.
    pub(crate) fn parse_object_name(&mut self) -> Result<ObjectName, ParseError> {
        let mut parts = vec![self.parse_identifier()?];
        while self.peek_token() == &Token::Period && matches!(self.peek_nth(1), Token::Word(_)) {
            self.next_token();
            parts.push(self.parse_identifier()?);
        }
        Ok(ObjectName(parts))
    }

    /// Parse an optional `[AS] alias`, rejecting reserved words for the
    /// bare (no `AS`) form.
    pub(crate) fn parse_optional_alias(&mut self) -> Result<Option<Ident>, ParseError> {
        if self.parse_keyword(Keyword::AS) {
            return Ok(Some(self.parse_identifier()?));
        }
        match self.peek_token() {
            Token::Word(w) => {
                let ok = match w.keyword {
                    None => true,
                    Some(kw) => !kw.is_reserved_for_alias(),
                };
                if ok {
                    let w = w.clone();
                    let span = self.peek_span();
                    self.next_token();
                    Ok(Some(Self::word_to_ident(&w, span)))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }

    /// Parse an optional table alias with an optional column list.
    pub(crate) fn parse_optional_table_alias(&mut self) -> Result<Option<TableAlias>, ParseError> {
        let Some(name) = self.parse_optional_alias()? else {
            return Ok(None);
        };
        let mut columns = Vec::new();
        if self.peek_token() == &Token::LParen {
            self.next_token();
            loop {
                columns.push(self.parse_identifier()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        Ok(Some(TableAlias { name, columns }))
    }

    /// Parse a parenthesised comma-separated identifier list.
    pub(crate) fn parse_paren_ident_list(&mut self) -> Result<Vec<Ident>, ParseError> {
        self.expect_token(&Token::LParen)?;
        let mut out = Vec::new();
        loop {
            out.push(self.parse_identifier()?);
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(out)
    }

    // ---- statements ----------------------------------------------------

    /// Parse a single statement at the cursor.
    pub fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek_token() {
            Token::Word(w) => match w.keyword {
                Some(Keyword::SELECT) | Some(Keyword::WITH) | Some(Keyword::VALUES) => {
                    Ok(Statement::Query(Box::new(self.parse_query()?)))
                }
                Some(Keyword::CREATE) => self.parse_create(),
                Some(Keyword::INSERT) => self.parse_insert(),
                Some(Keyword::DROP) => self.parse_drop(),
                Some(Keyword::UPDATE) => self.parse_update(),
                Some(Keyword::DELETE) => self.parse_delete(),
                Some(Keyword::EXPLAIN) => Ok(self.parse_noise(NoiseKind::Explain)),
                Some(Keyword::SET) => Ok(self.parse_noise(NoiseKind::Set)),
                Some(Keyword::BEGIN) => Ok(self.parse_noise(NoiseKind::Begin)),
                Some(Keyword::COMMIT) => Ok(self.parse_noise(NoiseKind::Commit)),
                Some(Keyword::ROLLBACK) => Ok(self.parse_noise(NoiseKind::Rollback)),
                Some(Keyword::ANALYZE) => Ok(self.parse_noise(NoiseKind::Analyze)),
                Some(Keyword::MERGE) if self.dialect.supports_merge() => self.parse_merge(),
                _ => Err(self.error_here(format!("unexpected start of statement: {}", w.value))),
            },
            Token::LParen => Ok(Statement::Query(Box::new(self.parse_query()?))),
            other => Err(self.error_here(format!("unexpected start of statement: {other}"))),
        }
    }

    /// Consume a recognised log-noise statement (`EXPLAIN`, `SET`,
    /// transaction control, `ANALYZE`) up to its terminating `;`,
    /// recording the statement's token text. Noise never fails: whatever
    /// follows the leading keyword is part of the skipped statement.
    fn parse_noise(&mut self, kind: NoiseKind) -> Statement {
        let mut text = String::new();
        loop {
            match self.peek_token() {
                Token::Semicolon | Token::Eof => break,
                token => {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&token.to_string());
                    self.next_token();
                }
            }
        }
        Statement::Noise(NoiseStatement { kind, text })
    }

    /// Shallowly parse a dialect `MERGE` statement: the target name is
    /// extracted for diagnostics and everything up to the terminating `;`
    /// is captured as token text. The body is deliberately not modelled —
    /// downstream layers degrade the statement to a `dialect-fallback`
    /// diagnostic rather than extracting lineage from it.
    fn parse_merge(&mut self) -> Result<Statement, ParseError> {
        let snapshot = self.snapshot();
        self.expect_keyword(Keyword::MERGE)?;
        self.parse_keyword(Keyword::INTO);
        let target = self.parse_object_name()?;
        // Re-walk from MERGE so the captured text covers the whole
        // statement, target included.
        self.rollback(snapshot);
        let mut text = String::new();
        loop {
            match self.peek_token() {
                Token::Semicolon | Token::Eof => break,
                token => {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&token.to_string());
                    self.next_token();
                }
            }
        }
        Ok(Statement::Merge(MergeStatement { target, text }))
    }

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword(Keyword::CREATE)?;
        let or_replace = self.parse_keywords(&[Keyword::OR, Keyword::REPLACE]);
        let temporary = self.parse_keyword(Keyword::TEMPORARY) || self.parse_keyword(Keyword::TEMP);
        let materialized = self.parse_keyword(Keyword::MATERIALIZED);
        if self.parse_keyword(Keyword::VIEW) {
            self.parse_create_view(or_replace, materialized, temporary)
        } else if self.parse_keyword(Keyword::TABLE) {
            if materialized {
                return Err(self.error_here("MATERIALIZED applies to views, not tables"));
            }
            self.parse_create_table(or_replace, temporary)
        } else {
            Err(self.error_here(format!("expected VIEW or TABLE, found {}", self.peek_token())))
        }
    }

    fn parse_create_view(
        &mut self,
        or_replace: bool,
        materialized: bool,
        temporary: bool,
    ) -> Result<Statement, ParseError> {
        let if_not_exists = self.parse_keywords(&[Keyword::IF, Keyword::NOT, Keyword::EXISTS]);
        let name = self.parse_object_name()?;
        let columns = if self.peek_token() == &Token::LParen {
            self.parse_paren_ident_list()?
        } else {
            Vec::new()
        };
        self.expect_keyword(Keyword::AS)?;
        let query = Box::new(self.parse_query()?);
        Ok(Statement::CreateView {
            or_replace,
            materialized,
            temporary,
            if_not_exists,
            name,
            columns,
            query,
        })
    }

    fn parse_create_table(
        &mut self,
        or_replace: bool,
        temporary: bool,
    ) -> Result<Statement, ParseError> {
        let if_not_exists = self.parse_keywords(&[Keyword::IF, Keyword::NOT, Keyword::EXISTS]);
        let name = self.parse_object_name()?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        let mut query = None;
        if self.peek_token() == &Token::LParen {
            self.next_token();
            loop {
                if let Some(constraint) = self.parse_optional_table_constraint()? {
                    constraints.push(constraint);
                } else {
                    columns.push(self.parse_column_def()?);
                }
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        } else if self.parse_keyword(Keyword::AS) {
            query = Some(Box::new(self.parse_query()?));
        } else {
            return Err(self.error_here("expected ( column list ) or AS query"));
        }
        // `CREATE TABLE t (...) AS query` is not standard; only the bare
        // CTAS form sets `query`.
        Ok(Statement::CreateTable {
            or_replace,
            temporary,
            if_not_exists,
            name,
            columns,
            constraints,
            query,
        })
    }

    fn parse_optional_table_constraint(&mut self) -> Result<Option<TableConstraint>, ParseError> {
        // An optional `CONSTRAINT name` prefix applies to both column and
        // table constraints; we only support it on table constraints, where
        // it is most common, and discard the name (lineage does not use it).
        let snapshot = self.snapshot();
        if self.parse_keyword(Keyword::CONSTRAINT) {
            let _name = self.parse_identifier()?;
        }
        let constraint = if self.parse_keywords(&[Keyword::PRIMARY, Keyword::KEY]) {
            Some(TableConstraint::PrimaryKey(self.parse_paren_ident_list()?))
        } else if self.peek_token().is_keyword(Keyword::UNIQUE)
            && self.peek_nth(1) == &Token::LParen
        {
            self.next_token();
            Some(TableConstraint::Unique(self.parse_paren_ident_list()?))
        } else if self.parse_keywords(&[Keyword::FOREIGN, Keyword::KEY]) {
            let columns = self.parse_paren_ident_list()?;
            self.expect_keyword(Keyword::REFERENCES)?;
            let foreign_table = self.parse_object_name()?;
            let referred_columns = if self.peek_token() == &Token::LParen {
                self.parse_paren_ident_list()?
            } else {
                Vec::new()
            };
            Some(TableConstraint::ForeignKey { columns, foreign_table, referred_columns })
        } else if self.peek_token().is_keyword(Keyword::CHECK) && self.peek_nth(1) == &Token::LParen
        {
            self.next_token();
            self.expect_token(&Token::LParen)?;
            let expr = self.parse_expr()?;
            self.expect_token(&Token::RParen)?;
            Some(TableConstraint::Check(expr))
        } else {
            None
        };
        if constraint.is_none() {
            self.rollback(snapshot);
        }
        Ok(constraint)
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef, ParseError> {
        let name = self.parse_identifier()?;
        let data_type = self.parse_data_type()?;
        let mut options = Vec::new();
        loop {
            if self.parse_keywords(&[Keyword::NOT, Keyword::NULL]) {
                options.push(ColumnOption::NotNull);
            } else if self.parse_keyword(Keyword::NULL) {
                options.push(ColumnOption::Null);
            } else if self.parse_keywords(&[Keyword::PRIMARY, Keyword::KEY]) {
                options.push(ColumnOption::PrimaryKey);
            } else if self.parse_keyword(Keyword::UNIQUE) {
                options.push(ColumnOption::Unique);
            } else if self.parse_keyword(Keyword::DEFAULT) {
                options.push(ColumnOption::Default(self.parse_expr()?));
            } else if self.parse_keyword(Keyword::REFERENCES) {
                let table = self.parse_object_name()?;
                let column = if self.peek_token() == &Token::LParen {
                    self.next_token();
                    let c = self.parse_identifier()?;
                    self.expect_token(&Token::RParen)?;
                    Some(c)
                } else {
                    None
                };
                options.push(ColumnOption::References { table, column });
            } else if self.parse_keyword(Keyword::CHECK) {
                self.expect_token(&Token::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                options.push(ColumnOption::Check(expr));
            } else {
                break;
            }
        }
        Ok(ColumnDef { name, data_type, options })
    }

    /// Parse a data type: a one-or-two-word type phrase, optional numeric
    /// parameters, and an optional `with/without time zone` suffix.
    pub(crate) fn parse_data_type(&mut self) -> Result<DataType, ParseError> {
        let first = match self.peek_token() {
            Token::Word(w)
                if w.keyword.is_none() || !w.keyword.unwrap().is_reserved_for_alias() =>
            {
                let v = w.value.to_lowercase();
                self.next_token();
                v
            }
            other => return Err(self.error_here(format!("expected data type, found {other}"))),
        };
        let mut name = first;
        // Known two-word type phrases.
        let continuation: Option<&str> = match (name.as_str(), self.peek_token()) {
            ("double", Token::Word(w)) if w.value.eq_ignore_ascii_case("precision") => {
                Some("precision")
            }
            ("character", Token::Word(w)) if w.value.eq_ignore_ascii_case("varying") => {
                Some("varying")
            }
            ("bit", Token::Word(w)) if w.value.eq_ignore_ascii_case("varying") => Some("varying"),
            _ => None,
        };
        if let Some(cont) = continuation {
            self.next_token();
            name.push(' ');
            name.push_str(cont);
        }
        let mut params = Vec::new();
        if self.peek_token() == &Token::LParen {
            self.next_token();
            loop {
                match self.next_token() {
                    Token::Number(n) => {
                        let v = n
                            .parse::<u64>()
                            .map_err(|_| self.error_here(format!("invalid type parameter {n}")))?;
                        params.push(v);
                    }
                    other => {
                        return Err(
                            self.error_here(format!("expected numeric parameter, found {other}"))
                        )
                    }
                }
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
        }
        let mut suffix = None;
        if matches!(name.as_str(), "time" | "timestamp") {
            let snapshot = self.snapshot();
            let with = if self.parse_keyword(Keyword::WITH) {
                Some(true)
            } else if matches!(self.peek_token(), Token::Word(w) if w.value.eq_ignore_ascii_case("without"))
            {
                self.next_token();
                Some(false)
            } else {
                None
            };
            if let Some(with) = with {
                let time_ok = matches!(self.peek_token(), Token::Word(w) if w.value.eq_ignore_ascii_case("time"));
                if time_ok {
                    self.next_token();
                    let zone_ok = matches!(self.peek_token(), Token::Word(w) if w.value.eq_ignore_ascii_case("zone"));
                    if zone_ok {
                        self.next_token();
                        suffix = Some(if with {
                            "with time zone".to_string()
                        } else {
                            "without time zone".to_string()
                        });
                    } else {
                        self.rollback(snapshot);
                    }
                } else {
                    self.rollback(snapshot);
                }
            }
        }
        Ok(DataType { name, params, suffix })
    }

    fn parse_insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword(Keyword::INSERT)?;
        self.expect_keyword(Keyword::INTO)?;
        let table = self.parse_object_name()?;
        let columns = if self.peek_token() == &Token::LParen
            && !matches!(self.peek_nth(1), Token::Word(w) if w.keyword == Some(Keyword::SELECT) || w.keyword == Some(Keyword::WITH))
        {
            self.parse_paren_ident_list()?
        } else {
            Vec::new()
        };
        let source = Box::new(self.parse_query()?);
        Ok(Statement::Insert { table, columns, source })
    }

    fn parse_update(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword(Keyword::UPDATE)?;
        let table = self.parse_object_name()?;
        let alias = self.parse_optional_table_alias()?;
        self.expect_keyword(Keyword::SET)?;
        let mut assignments = Vec::new();
        loop {
            let column = self.parse_identifier()?;
            self.expect_token(&Token::Eq)?;
            let value = self.parse_expr()?;
            assignments.push(Assignment { column, value });
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.parse_keyword(Keyword::FROM) {
            loop {
                from.push(self.parse_table_with_joins()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        let selection =
            if self.parse_keyword(Keyword::WHERE) { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, alias, assignments, from, selection })
    }

    fn parse_delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword(Keyword::DELETE)?;
        self.expect_keyword(Keyword::FROM)?;
        let table = self.parse_object_name()?;
        let alias = self.parse_optional_table_alias()?;
        let mut using = Vec::new();
        if self.parse_keyword(Keyword::USING) {
            loop {
                using.push(self.parse_table_with_joins()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        let selection =
            if self.parse_keyword(Keyword::WHERE) { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete { table, alias, using, selection })
    }

    fn parse_drop(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword(Keyword::DROP)?;
        let object_type = if self.parse_keyword(Keyword::TABLE) {
            ObjectType::Table
        } else if self.parse_keywords(&[Keyword::MATERIALIZED, Keyword::VIEW]) {
            ObjectType::MaterializedView
        } else if self.parse_keyword(Keyword::VIEW) {
            ObjectType::View
        } else {
            return Err(self.error_here("expected TABLE or VIEW after DROP"));
        };
        let if_exists = self.parse_keywords(&[Keyword::IF, Keyword::EXISTS]);
        let mut names = vec![self.parse_object_name()?];
        while self.consume_token(&Token::Comma) {
            names.push(self.parse_object_name()?);
        }
        Ok(Statement::Drop { object_type, if_exists, names })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_statements() {
        let stmts = Parser::parse_sql("SELECT 1; SELECT 2;; SELECT 3").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn empty_input_yields_no_statements() {
        assert!(Parser::parse_sql("").unwrap().is_empty());
        assert!(Parser::parse_sql(" ;; ; ").unwrap().is_empty());
    }

    #[test]
    fn garbage_between_statements_errors() {
        let err = Parser::parse_sql("SELECT 1 SELECT 2").unwrap_err();
        assert!(err.message.contains("end of statement"), "{err}");
    }

    #[test]
    fn spanned_statements_cover_their_source() {
        let sql = "SELECT 1;\nCREATE VIEW v AS SELECT a FROM t;";
        let stmts = Parser::parse_sql_spanned(sql).unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].span.slice(sql), "SELECT 1");
        assert_eq!(stmts[1].span.slice(sql), "CREATE VIEW v AS SELECT a FROM t");
        assert_eq!(stmts[1].span.location.line, 2);
    }

    #[test]
    fn identifiers_carry_token_spans() {
        let sql = "SELECT col FROM tbl";
        let stmts = Parser::parse_sql_spanned(sql).unwrap();
        let Statement::Query(q) = &stmts[0].statement else { panic!() };
        let SetExpr::Select(sel) = &q.body else { panic!() };
        let SelectItem::UnnamedExpr(Expr::Identifier(col)) = &sel.projection[0] else { panic!() };
        assert_eq!(col.span.slice(sql), "col");
        let TableFactor::Table { name, .. } = &sel.from[0].relation else { panic!() };
        assert_eq!(name.span().slice(sql), "tbl");
    }

    #[test]
    fn recovering_parse_keeps_good_statements() {
        let sql = "SELECT a FROM t;\nSELECT FROM oops;\nSELECT b FROM u;";
        let script = Parser::parse_statements_recovering(sql);
        assert_eq!(script.statements.len(), 2);
        assert_eq!(script.errors.len(), 1);
        assert!(!script.is_clean());
        assert_eq!(script.errors[0].span.location.line, 2);
        assert_eq!(script.statements[1].span.location.line, 3);
    }

    #[test]
    fn recovering_parse_survives_lex_errors() {
        // `#` is not a valid SQL character; the lexer must resynchronise.
        let sql = "SELECT a # b;\nSELECT c FROM t;";
        let script = Parser::parse_statements_recovering(sql);
        assert_eq!(script.errors.len(), 1);
        assert_eq!(script.statements.len(), 1);
        assert_eq!(script.statements[0].span.location.line, 2);
    }

    #[test]
    fn recovering_parse_reports_trailing_garbage() {
        let script = Parser::parse_statements_recovering("SELECT 1 SELECT 2; SELECT 3");
        assert_eq!(script.errors.len(), 1);
        assert_eq!(script.statements.len(), 1);
        assert!(matches!(&script.statements[0].statement, Statement::Query(_)));
    }

    #[test]
    fn recovering_parse_of_clean_script_matches_strict() {
        let sql = "SELECT a FROM t; CREATE VIEW v AS SELECT 1;";
        let strict = Parser::parse_sql(sql).unwrap();
        let script = Parser::parse_statements_recovering(sql);
        assert!(script.is_clean());
        let recovered: Vec<Statement> =
            script.statements.into_iter().map(|s| s.statement).collect();
        assert_eq!(strict, recovered);
    }

    #[test]
    fn noise_statements_parse_without_tripping() {
        let sql = "BEGIN; SET search_path = public; EXPLAIN SELECT * FROM t; \
                   ANALYZE web; COMMIT; ROLLBACK";
        let stmts = Parser::parse_sql(sql).unwrap();
        let kinds: Vec<NoiseKind> = stmts
            .iter()
            .map(|s| match s {
                Statement::Noise(n) => n.kind,
                other => panic!("expected noise, got {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                NoiseKind::Begin,
                NoiseKind::Set,
                NoiseKind::Explain,
                NoiseKind::Analyze,
                NoiseKind::Commit,
                NoiseKind::Rollback,
            ]
        );
        // The noise text preserves the tokens for diagnostics.
        let Statement::Noise(explain) = &stmts[2] else { panic!() };
        assert_eq!(explain.text, "EXPLAIN SELECT * FROM t");
    }

    #[test]
    fn noise_statements_roundtrip_through_display() {
        for sql in ["BEGIN", "SET search_path = public", "EXPLAIN SELECT a FROM t"] {
            let stmt = crate::parse_statement(sql).unwrap();
            let redisplayed = crate::parse_statement(&stmt.to_string()).unwrap();
            assert_eq!(stmt, redisplayed);
        }
    }

    #[test]
    fn parses_create_view() {
        let stmt = crate::parse_statement(
            "CREATE OR REPLACE MATERIALIZED VIEW v(a, b) AS SELECT x, y FROM t",
        )
        .unwrap();
        match stmt {
            Statement::CreateView { or_replace, materialized, name, columns, .. } => {
                assert!(or_replace);
                assert!(materialized);
                assert_eq!(name.base_name(), "v");
                assert_eq!(columns.len(), 2);
            }
            other => panic!("expected CreateView, got {other:?}"),
        }
    }

    #[test]
    fn parses_create_table_with_constraints() {
        let sql = "CREATE TABLE orders (
            oid int PRIMARY KEY,
            cid int NOT NULL REFERENCES customers(cid),
            amount numeric(10, 2) DEFAULT 0,
            note character varying(100),
            CONSTRAINT uq UNIQUE (oid, cid),
            FOREIGN KEY (cid) REFERENCES customers (cid),
            CHECK (amount >= 0)
        )";
        let stmt = crate::parse_statement(sql).unwrap();
        match stmt {
            Statement::CreateTable { name, columns, constraints, query, .. } => {
                assert_eq!(name.base_name(), "orders");
                assert_eq!(columns.len(), 4);
                assert_eq!(constraints.len(), 3);
                assert!(query.is_none());
                assert_eq!(columns[2].data_type.params, vec![10, 2]);
                assert_eq!(columns[3].data_type.name, "character varying");
            }
            other => panic!("expected CreateTable, got {other:?}"),
        }
    }

    #[test]
    fn parses_ctas() {
        let stmt = crate::parse_statement("CREATE TABLE t2 AS SELECT * FROM t1").unwrap();
        match stmt {
            Statement::CreateTable { query, columns, .. } => {
                assert!(query.is_some());
                assert!(columns.is_empty());
            }
            other => panic!("expected CreateTable, got {other:?}"),
        }
    }

    #[test]
    fn parses_insert_select() {
        let stmt = crate::parse_statement("INSERT INTO t (a, b) SELECT x, y FROM u").unwrap();
        match stmt {
            Statement::Insert { table, columns, .. } => {
                assert_eq!(table.base_name(), "t");
                assert_eq!(columns.len(), 2);
            }
            other => panic!("expected Insert, got {other:?}"),
        }
    }

    #[test]
    fn parses_insert_values() {
        let stmt = crate::parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert { source, .. } => {
                assert!(matches!(source.body, SetExpr::Values(_)));
            }
            other => panic!("expected Insert, got {other:?}"),
        }
    }

    #[test]
    fn parses_drop() {
        let stmt = crate::parse_statement("DROP VIEW IF EXISTS a, b.c").unwrap();
        match stmt {
            Statement::Drop { object_type, if_exists, names } => {
                assert_eq!(object_type, ObjectType::View);
                assert!(if_exists);
                assert_eq!(names.len(), 2);
            }
            other => panic!("expected Drop, got {other:?}"),
        }
    }

    #[test]
    fn timestamp_with_time_zone() {
        let stmt = crate::parse_statement("CREATE TABLE t (ts timestamp with time zone)").unwrap();
        match stmt {
            Statement::CreateTable { columns, .. } => {
                assert_eq!(columns[0].data_type.suffix.as_deref(), Some("with time zone"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_update() {
        let stmt = crate::parse_statement(
            "UPDATE web AS w SET page = u.page, reg = TRUE FROM updates u WHERE w.cid = u.cid",
        )
        .unwrap();
        match stmt {
            Statement::Update { table, alias, assignments, from, selection } => {
                assert_eq!(table.base_name(), "web");
                assert_eq!(alias.unwrap().name.value, "w");
                assert_eq!(assignments.len(), 2);
                assert_eq!(assignments[0].column.value, "page");
                assert_eq!(from.len(), 1);
                assert!(selection.is_some());
            }
            other => panic!("expected Update, got {other:?}"),
        }
    }

    #[test]
    fn parses_minimal_update() {
        let stmt = crate::parse_statement("UPDATE t SET a = 1").unwrap();
        match stmt {
            Statement::Update { assignments, from, selection, alias, .. } => {
                assert_eq!(assignments.len(), 1);
                assert!(from.is_empty());
                assert!(selection.is_none());
                assert!(alias.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_delete() {
        let stmt = crate::parse_statement("DELETE FROM web w USING retired r WHERE w.cid = r.cid")
            .unwrap();
        match stmt {
            Statement::Delete { table, alias, using, selection } => {
                assert_eq!(table.base_name(), "web");
                assert_eq!(alias.unwrap().name.value, "w");
                assert_eq!(using.len(), 1);
                assert!(selection.is_some());
            }
            other => panic!("expected Delete, got {other:?}"),
        }
    }

    #[test]
    fn reserved_word_as_identifier_fails() {
        assert!(crate::parse_statement("SELECT * FROM select").is_err());
    }

    #[test]
    fn quoted_reserved_word_as_identifier_ok() {
        let stmt = crate::parse_statement(r#"SELECT * FROM "select""#).unwrap();
        assert!(matches!(stmt, Statement::Query(_)));
    }
}
