//! # lineagex-sqlparse
//!
//! A self-contained SQL lexer, parser, and abstract syntax tree used by the
//! LineageX column-lineage extraction engine.
//!
//! The original LineageX system (ICDE 2025) relies on the Python library
//! SQLGlot to obtain query ASTs. This crate plays that role: it turns raw
//! SQL text into a typed [`ast::Statement`] tree that the lineage extractor
//! traverses. The grammar covers the analytical SQL subset that matters for
//! lineage — `SELECT` (projections, aliases, wildcards, qualified
//! wildcards), joins of every flavour, `WHERE`/`GROUP BY`/`HAVING`/
//! `ORDER BY`/`LIMIT`, common table expressions, derived tables, scalar and
//! quantified subqueries, set operations (`UNION`/`INTERSECT`/`EXCEPT`),
//! window functions, `CASE`, `CAST`, special call syntaxes such as
//! `EXTRACT(YEAR FROM ts)`, and the DDL/DML statements LineageX consumes
//! from query logs (`CREATE [MATERIALIZED] VIEW`, `CREATE TABLE`,
//! `CREATE TABLE .. AS`, `INSERT INTO .. SELECT`).
//!
//! ## Quick example
//!
//! ```
//! use lineagex_sqlparse::parse_sql;
//!
//! let stmts = parse_sql("SELECT c.name FROM customers c WHERE c.age > 21").unwrap();
//! assert_eq!(stmts.len(), 1);
//! ```
//!
//! The parser is a classic recursive-descent design with a Pratt (binding
//! power) expression parser. Every token carries a byte span so errors point
//! at the offending location. The AST implements `Display`, producing SQL
//! text that parses back to the same tree — a property exercised by the
//! round-trip proptest suite.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod ast;
pub mod dialect;
pub mod error;
pub mod keywords;
pub mod lexer;
pub mod parser;
pub mod span;
pub mod token;

pub use ast::{Expr, Ident, ObjectName, Query, Select, SetExpr, SpannedStatement, Statement};
pub use dialect::{Ansi, BigQuery, Dialect, DialectKind, Postgres, Snowflake, TSql};
pub use error::ParseError;
pub use parser::{Parser, RecoveredScript};
pub use span::{Location, Span};

/// Parse a string that may contain several `;`-separated SQL statements.
///
/// Returns the parsed statements in source order. Empty statements (e.g.
/// trailing semicolons) are skipped.
pub fn parse_sql(sql: &str) -> Result<Vec<Statement>, ParseError> {
    Parser::parse_sql(sql)
}

/// Like [`parse_sql`], under a specific [`DialectKind`].
///
/// ```
/// use lineagex_sqlparse::{parse_sql_with, DialectKind};
///
/// let stmts = parse_sql_with("SELECT TOP 3 name FROM [user table]", DialectKind::TSql).unwrap();
/// assert_eq!(stmts.len(), 1);
/// ```
pub fn parse_sql_with(sql: &str, dialect: DialectKind) -> Result<Vec<Statement>, ParseError> {
    Parser::parse_sql_with(sql, dialect)
}

/// Like [`parse_sql`], but every statement keeps the source [`Span`] it
/// was parsed from.
pub fn parse_sql_spanned(sql: &str) -> Result<Vec<SpannedStatement>, ParseError> {
    Parser::parse_sql_spanned(sql)
}

/// Like [`parse_sql_spanned`], under a specific [`DialectKind`].
pub fn parse_sql_spanned_with(
    sql: &str,
    dialect: DialectKind,
) -> Result<Vec<SpannedStatement>, ParseError> {
    Parser::parse_sql_spanned_with(sql, dialect)
}

/// Parse a script that may contain corrupt statements, recovering at the
/// next top-level `;` after each error instead of aborting.
///
/// ```
/// let script = lineagex_sqlparse::parse_statements_recovering(
///     "SELECT a FROM t; SELECT oops FROM; SELECT b FROM u",
/// );
/// assert_eq!(script.statements.len(), 2);
/// assert_eq!(script.errors.len(), 1);
/// assert_eq!(script.errors[0].span.location.line, 1);
/// ```
pub fn parse_statements_recovering(sql: &str) -> RecoveredScript {
    Parser::parse_statements_recovering(sql)
}

/// Like [`parse_statements_recovering`], under a specific [`DialectKind`].
pub fn parse_statements_recovering_with(sql: &str, dialect: DialectKind) -> RecoveredScript {
    Parser::parse_statements_recovering_with(sql, dialect)
}

/// Parse a string holding exactly one SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut stmts = Parser::parse_sql(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(ParseError::new("expected a statement, found none", span::Span::default())),
        n => Err(ParseError::new(
            format!("expected exactly one statement, found {n}"),
            span::Span::default(),
        )),
    }
}
