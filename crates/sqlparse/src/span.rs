//! Source locations and spans attached to tokens and errors.

use std::fmt;

/// A line/column position inside the SQL source text (both 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (counted in characters).
    pub column: u32,
}

impl Location {
    /// Create a location from 1-based line and column numbers.
    pub fn new(line: u32, column: u32) -> Self {
        Location { line, column }
    }
}

impl Default for Location {
    fn default() -> Self {
        Location { line: 1, column: 1 }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// A half-open byte range `[start, end)` in the source, with the line/column
/// of its start for human-readable error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned text.
    pub end: usize,
    /// Line/column of `start`.
    pub location: Location,
}

impl Span {
    /// Create a span covering `[start, end)` beginning at `location`.
    pub fn new(start: usize, end: usize, location: Location) -> Self {
        Span { start, end, location }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn union(&self, other: &Span) -> Span {
        let (start, location) = if self.start <= other.start {
            (self.start, self.location)
        } else {
            (other.start, other.location)
        };
        Span { start, end: self.end.max(other.end), location }
    }

    /// Extract the spanned slice from the original source text.
    pub fn slice<'a>(&self, source: &'a str) -> &'a str {
        source.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.location)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_picks_outer_bounds() {
        let a = Span::new(3, 7, Location::new(1, 4));
        let b = Span::new(5, 12, Location::new(1, 6));
        let u = a.union(&b);
        assert_eq!(u.start, 3);
        assert_eq!(u.end, 12);
        assert_eq!(u.location, Location::new(1, 4));
        // Union is symmetric on bounds.
        let v = b.union(&a);
        assert_eq!(v.start, 3);
        assert_eq!(v.end, 12);
    }

    #[test]
    fn slice_returns_spanned_text() {
        let src = "SELECT a FROM t";
        let s = Span::new(7, 8, Location::new(1, 8));
        assert_eq!(s.slice(src), "a");
    }

    #[test]
    fn slice_out_of_bounds_is_empty() {
        let s = Span::new(10, 99, Location::default());
        assert_eq!(s.slice("short"), "");
    }

    #[test]
    fn display_shows_line_and_column() {
        let s = Span::new(0, 1, Location::new(3, 14));
        assert_eq!(s.to_string(), "line 3, column 14");
    }
}
