//! Parse and lex error types.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing or parsing SQL text.
///
/// Carries the source [`Span`] where the problem was detected so callers can
/// point at the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the source the error was detected.
    pub span: Span,
}

impl ParseError {
    /// Create a new error at `span`.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span }
    }

    /// Render the error with a caret line pointing into `source`.
    ///
    /// ```text
    /// parse error at line 1, column 8: expected expression
    ///   SELECT FROM t
    ///          ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let line_idx = self.span.location.line.saturating_sub(1) as usize;
        let col_idx = self.span.location.column.saturating_sub(1) as usize;
        let line = source.lines().nth(line_idx).unwrap_or("");
        let caret = " ".repeat(col_idx);
        format!("parse error at {}: {}\n  {}\n  {}^", self.span, self.message, line, caret)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Location;

    #[test]
    fn display_includes_location_and_message() {
        let e = ParseError::new("unexpected token", Span::new(7, 11, Location::new(2, 3)));
        assert_eq!(e.to_string(), "parse error at line 2, column 3: unexpected token");
    }

    #[test]
    fn render_points_caret_at_column() {
        let src = "SELECT FROM t";
        let e = ParseError::new("expected expression", Span::new(7, 11, Location::new(1, 8)));
        let rendered = e.render(src);
        assert!(rendered.contains("SELECT FROM t"));
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line.find('^').unwrap(), 2 + 7); // two indent spaces + column offset
    }

    #[test]
    fn render_handles_out_of_range_line() {
        let e = ParseError::new("eof", Span::new(0, 0, Location::new(99, 1)));
        // Must not panic even when the line does not exist.
        let rendered = e.render("one line only");
        assert!(rendered.contains("eof"));
    }
}
