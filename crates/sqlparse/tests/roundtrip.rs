//! Round-trip tests: `parse(sql)` → `to_string()` → `parse` must yield an
//! identical AST. A fixed corpus covers every grammar production; a proptest
//! generator fuzzes expression shapes.

use lineagex_sqlparse::ast::*;
use lineagex_sqlparse::{parse_sql, parse_statement};
use proptest::prelude::*;

/// Assert one statement round-trips through the printer.
fn assert_roundtrip(sql: &str) {
    let first = parse_statement(sql).unwrap_or_else(|e| panic!("{sql}\n{e}"));
    let printed = first.to_string();
    let second = parse_statement(&printed)
        .unwrap_or_else(|e| panic!("printed SQL failed to parse:\n{printed}\n{e}"));
    assert_eq!(first, second, "round-trip mismatch\noriginal: {sql}\nprinted:  {printed}");
}

const CORPUS: &[&str] = &[
    "SELECT 1",
    "SELECT a, b AS bb, c cc FROM t",
    "SELECT * FROM t",
    "SELECT w.* FROM web w",
    "SELECT public.t.* FROM public.t",
    "SELECT DISTINCT a FROM t",
    "SELECT DISTINCT ON (a) a, b FROM t",
    "SELECT count(*) FROM t",
    "SELECT count(DISTINCT a) FROM t",
    "SELECT count(t.*) FROM t",
    "SELECT coalesce(a, b, 0) FROM t",
    "SELECT a FROM t WHERE a = 1 AND b <> 2 OR NOT c",
    "SELECT a FROM t WHERE a IS NULL",
    "SELECT a FROM t WHERE a IS NOT NULL",
    "SELECT a FROM t WHERE a IN (1, 2, 3)",
    "SELECT a FROM t WHERE a NOT IN (SELECT x FROM u)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10",
    "SELECT a FROM t WHERE a NOT BETWEEN 1 AND 10",
    "SELECT a FROM t WHERE a LIKE 'x%'",
    "SELECT a FROM t WHERE a NOT ILIKE '%y'",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
    "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t WHERE a = ANY (SELECT x FROM u)",
    "SELECT a FROM t WHERE a < ALL (SELECT x FROM u)",
    "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END FROM t",
    "SELECT CASE a WHEN 1 THEN 'one' END FROM t",
    "SELECT CAST(a AS integer) FROM t",
    "SELECT a::numeric(10, 2) FROM t",
    "SELECT EXTRACT(year FROM w.date) FROM web w",
    "SELECT SUBSTRING(a FROM 1 FOR 3) FROM t",
    "SELECT TRIM(a) FROM t",
    "SELECT TRIM(LEADING ' ' FROM a) FROM t",
    "SELECT POSITION('x' IN a) FROM t",
    "SELECT INTERVAL '1 day' FROM t",
    "SELECT INTERVAL '1' day FROM t",
    "SELECT a || b || 'suffix' FROM t",
    "SELECT -a, +b, 2 ^ 10, a % 3 FROM t",
    "SELECT (SELECT max(x) FROM u) AS mx FROM t",
    "SELECT (1, 2) FROM t",
    "SELECT ((a)) FROM t",
    "SELECT row_number() OVER (PARTITION BY dept ORDER BY salary DESC) FROM emp",
    "SELECT sum(x) OVER (ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) FROM t",
    "SELECT sum(x) OVER (RANGE BETWEEN 1 PRECEDING AND 2 FOLLOWING) FROM t",
    "SELECT sum(x) FILTER (WHERE x > 0) FROM t",
    "SELECT a FROM t1 JOIN t2 ON t1.id = t2.id",
    "SELECT a FROM t1 LEFT JOIN t2 USING (id, ts)",
    "SELECT a FROM t1 RIGHT JOIN t2 ON TRUE",
    "SELECT a FROM t1 FULL JOIN t2 ON t1.id = t2.id",
    "SELECT a FROM t1 CROSS JOIN t2",
    "SELECT a FROM t1 NATURAL JOIN t2",
    "SELECT a FROM t1, t2, t3 WHERE t1.x = t2.x",
    "SELECT a FROM (SELECT b AS a FROM u) AS sub",
    "SELECT a FROM (SELECT b FROM u) AS sub(a)",
    "SELECT a FROM (t1 JOIN t2 ON t1.id = t2.id) JOIN t3 ON t2.k = t3.k",
    "SELECT a FROM t, LATERAL (SELECT t.x AS y) AS l",
    "WITH c AS (SELECT 1 AS one) SELECT one FROM c",
    "WITH c(renamed) AS (SELECT 1) SELECT renamed FROM c",
    "WITH RECURSIVE r AS (SELECT 1 AS n UNION ALL SELECT n + 1 FROM r WHERE n < 5) SELECT * FROM r",
    "WITH a AS (SELECT 1 AS x), b AS (SELECT x FROM a) SELECT x FROM b",
    "SELECT 1 UNION SELECT 2",
    "SELECT 1 UNION ALL SELECT 2",
    "SELECT 1 INTERSECT SELECT 2",
    "SELECT 1 EXCEPT SELECT 2",
    "SELECT 1 UNION SELECT 2 INTERSECT SELECT 3",
    "(SELECT 1 UNION SELECT 2) INTERSECT SELECT 3",
    "SELECT a FROM t ORDER BY a",
    "SELECT a FROM t ORDER BY a DESC NULLS LAST, b ASC NULLS FIRST",
    "SELECT a FROM t LIMIT 10",
    "SELECT a FROM t LIMIT 10 OFFSET 20",
    "SELECT a FROM t GROUP BY a HAVING count(*) > 1",
    "SELECT dept, avg(salary) FROM emp GROUP BY dept",
    "VALUES (1, 'a'), (2, 'b')",
    "SELECT \"Mixed Case\" FROM \"Weird Table\"",
    "SELECT a FROM t WHERE ts > '2022-01-01'::timestamp",
    "CREATE VIEW v AS SELECT a FROM t",
    "CREATE OR REPLACE VIEW v(x, y) AS SELECT a, b FROM t",
    "CREATE MATERIALIZED VIEW mv AS SELECT a FROM t",
    "CREATE TEMPORARY VIEW tv AS SELECT a FROM t",
    "CREATE TABLE t (a integer, b character varying(20) NOT NULL)",
    "CREATE TABLE t (a integer PRIMARY KEY, b numeric(10, 2) DEFAULT 0)",
    "CREATE TABLE t (a integer REFERENCES u(id), CHECK (a > 0))",
    "CREATE TABLE t (a integer, PRIMARY KEY (a), UNIQUE (a), FOREIGN KEY (a) REFERENCES u (id))",
    "CREATE TABLE t2 AS SELECT * FROM t1",
    "CREATE TABLE IF NOT EXISTS t (a integer)",
    "INSERT INTO t (a, b) SELECT x, y FROM u",
    "INSERT INTO t VALUES (1, 2)",
    "DROP TABLE a, b",
    "DROP VIEW IF EXISTS v",
    "DROP MATERIALIZED VIEW mv",
    "SELECT a FROM t WHERE a IS DISTINCT FROM b",
    "SELECT a FROM t WHERE a IS NOT DISTINCT FROM b",
    "UPDATE t SET a = 1, b = c + 1",
    "UPDATE web AS w SET page = u.page FROM updates AS u WHERE w.cid = u.cid",
    "DELETE FROM t WHERE a > 0",
    "DELETE FROM web AS w USING retired AS r WHERE w.cid = r.cid",
    "SELECT a FROM t WHERE EXTRACT(year FROM w.date) = 2022",
];

#[test]
fn corpus_round_trips() {
    for sql in CORPUS {
        assert_roundtrip(sql);
    }
}

#[test]
fn multi_statement_script_round_trips() {
    let script = "CREATE VIEW a AS SELECT 1; CREATE VIEW b AS SELECT 2; SELECT * FROM a";
    let stmts = parse_sql(script).unwrap();
    assert_eq!(stmts.len(), 3);
    for stmt in stmts {
        let printed = stmt.to_string();
        assert_eq!(parse_statement(&printed).unwrap(), stmt);
    }
}

// ---- property-based round-trip over generated expression trees ----------

fn ident_strategy() -> impl Strategy<Value = Ident> {
    "[a-z][a-z0-9_]{0,8}"
        .prop_filter("not a keyword", |s| lineagex_sqlparse::keywords::Keyword::lookup(s).is_none())
        .prop_map(Ident::new)
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (0u64..1_000_000).prop_map(|n| Literal::Number(n.to_string())),
        "[a-zA-Z0-9 '%_-]{0,12}".prop_map(Literal::String),
        any::<bool>().prop_map(Literal::Boolean),
        Just(Literal::Null),
    ]
}

/// Generate expressions that print unambiguously: every composite operand is
/// wrapped in `Nested`, matching what the parser produces for parenthesised
/// input.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        ident_strategy().prop_map(Expr::Identifier),
        (ident_strategy(), ident_strategy())
            .prop_map(|(t, c)| Expr::CompoundIdentifier(vec![t, c])),
        literal_strategy().prop_map(Expr::Literal),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        let wrapped = inner.clone().prop_map(|e| match e {
            leaf @ (Expr::Identifier(_) | Expr::CompoundIdentifier(_) | Expr::Literal(_)) => leaf,
            other => Expr::Nested(Box::new(other)),
        });
        prop_oneof![
            (
                wrapped.clone(),
                prop_oneof![
                    Just(BinaryOperator::Plus),
                    Just(BinaryOperator::Multiply),
                    Just(BinaryOperator::Eq),
                    Just(BinaryOperator::And),
                    Just(BinaryOperator::Concat),
                ],
                wrapped.clone()
            )
                .prop_map(|(l, op, r)| Expr::BinaryOp {
                    left: Box::new(l),
                    op,
                    right: Box::new(r)
                }),
            wrapped.clone().prop_map(|e| Expr::IsNull { expr: Box::new(e), negated: false }),
            (ident_strategy(), proptest::collection::vec(wrapped.clone(), 0..3)).prop_map(
                |(name, args)| {
                    Expr::Function(Function {
                        name: ObjectName(vec![name]),
                        args: args.into_iter().map(FunctionArg::Expr).collect(),
                        distinct: false,
                        filter: None,
                        over: None,
                    })
                }
            ),
            (wrapped.clone(), wrapped.clone(), wrapped.clone()).prop_map(|(c, r, e)| {
                Expr::Case {
                    operand: None,
                    conditions: vec![c],
                    results: vec![r],
                    else_result: Some(Box::new(e)),
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_expressions_round_trip(expr in expr_strategy()) {
        let sql = format!("SELECT {expr} FROM t");
        let stmt = parse_statement(&sql)
            .unwrap_or_else(|e| panic!("generated SQL failed to parse:\n{sql}\n{e}"));
        let Statement::Query(q) = &stmt else { panic!("expected query") };
        let SetExpr::Select(sel) = &q.body else { panic!("expected select") };
        let parsed_expr = match &sel.projection[0] {
            SelectItem::UnnamedExpr(e) => e,
            other => panic!("expected unnamed expr, got {other:?}"),
        };
        prop_assert_eq!(parsed_expr, &expr, "printed: {}", sql);
    }

    #[test]
    fn parser_never_panics_on_random_input(input in "[ -~]{0,80}") {
        // Any byte soup must yield Ok or Err, never a panic.
        let _ = parse_sql(&input);
    }

    #[test]
    fn parser_never_panics_on_sqlish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT".to_string()), Just("FROM".to_string()),
                Just("WHERE".to_string()), Just("JOIN".to_string()),
                Just("ON".to_string()), Just("(".to_string()), Just(")".to_string()),
                Just(",".to_string()), Just("*".to_string()), Just("=".to_string()),
                Just("t".to_string()), Just("a".to_string()), Just("1".to_string()),
                Just("UNION".to_string()), Just("WITH".to_string()), Just("AS".to_string()),
            ],
            0..20
        )
    ) {
        let sql = words.join(" ");
        let _ = parse_sql(&sql);
    }
}
