//! # lineagex-viz
//!
//! Rendering backends for LineageX lineage graphs, standing in for the
//! paper's web UI (Fig. 5). Three artefacts are produced:
//!
//! * [`json`] — the machine-readable lineage documents (the versioned v2
//!   report, the paper's v1 `output.json`) plus a nodes-and-edges graph
//!   JSON for the viewer;
//! * [`dot`] — Graphviz DOT with one record node per relation and edges
//!   coloured by kind (contribute = black, reference = blue, both =
//!   orange, matching the paper's palette);
//! * [`html`] — a single self-contained HTML file with an embedded
//!   JavaScript viewer: a table dropdown, per-table explore
//!   upstream/downstream expansion, and hover highlighting of downstream
//!   columns — the interactions demonstrated in §IV steps 2–3.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod dot;
pub mod html;
pub mod json;
pub mod markdown;
pub mod mermaid;

pub use dot::{subgraph_to_dot, to_dot};
pub use html::to_html;
pub use json::{graph_json, to_output_json, to_report_v2_json};
pub use markdown::to_markdown;
pub use mermaid::{subgraph_to_mermaid, to_mermaid};
