//! Self-contained interactive HTML viewer.
//!
//! Generates one HTML file with the graph JSON embedded and a small
//! vanilla-JS viewer implementing the paper's UI interactions (Fig. 5):
//!
//! * a dropdown to locate a table (step 2);
//! * an *explore* button revealing one hop of upstream/downstream tables
//!   per click (step 3);
//! * hovering a column highlights all of its direct downstream columns,
//!   coloured by edge kind (contribute = red, reference = blue, both =
//!   orange — the palette of the paper's figures).
//!
//! Layout is a simple layered left-to-right arrangement ("data flows from
//! left to right", §IV): each relation is placed in the column-layer equal
//! to its longest distance from a base table.

use crate::json::graph_json;
use lineagex_core::LineageGraph;

/// Render the interactive HTML page for a lineage graph.
pub fn to_html(graph: &LineageGraph) -> String {
    let data = serde_json::to_string(&graph_json(graph)).expect("graph serialises");
    // Table-level edges drive the layered layout and the explore feature.
    let table_edges: Vec<[String; 2]> =
        graph.table_edges().into_iter().map(|(from, to)| [from, to]).collect();
    let table_edges = serde_json::to_string(&table_edges).expect("edges serialise");

    HTML_TEMPLATE
        .replace("/*__GRAPH_DATA__*/", &format!("const GRAPH = {data};"))
        .replace("/*__TABLE_EDGES__*/", &format!("const TABLE_EDGES = {table_edges};"))
}

const HTML_TEMPLATE: &str = r#"<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>LineageX — column lineage</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 0; background: #fafafa; }
  #toolbar { padding: 10px 16px; background: #1a73e8; color: white; display: flex; gap: 12px; align-items: center; }
  #toolbar select, #toolbar button { font-size: 14px; padding: 4px 8px; }
  #canvas { position: relative; overflow: auto; height: calc(100vh - 52px); }
  svg { position: absolute; top: 0; left: 0; pointer-events: none; }
  .table-card { position: absolute; background: white; border: 1px solid #bbb; border-radius: 6px; box-shadow: 0 1px 3px rgba(0,0,0,.2); min-width: 150px; }
  .table-card h3 { margin: 0; padding: 6px 10px; font-size: 13px; background: #eef; border-bottom: 1px solid #ccd; border-radius: 6px 6px 0 0; display: flex; justify-content: space-between; }
  .table-card h3 .explore { cursor: pointer; color: #1a73e8; font-weight: normal; }
  .table-card.kind-BaseTable h3 { background: #e8f0fe; }
  .table-card.kind-View h3 { background: #fef7e0; }
  .table-card.kind-External h3 { background: #fce8e6; }
  .col { padding: 3px 10px; font-size: 12px; border-bottom: 1px solid #eee; cursor: pointer; }
  .col:hover { background: #f0f4ff; }
  .col.hl-origin { background: #d2e3fc; font-weight: bold; }
  .col.hl-contribute { background: #fad2cf; }
  .col.hl-reference { background: #d4e6fb; }
  .col.hl-both { background: #ffe3b3; }
  .hidden { display: none; }
</style>
</head>
<body>
<div id="toolbar">
  <strong>LineageX</strong>
  <label>table:
    <select id="picker"><option value="">— choose —</option></select>
  </label>
  <button id="show-all">show all</button>
  <span id="status"></span>
</div>
<div id="canvas"><svg id="edges"></svg></div>
<script>
/*__GRAPH_DATA__*/
/*__TABLE_EDGES__*/

const upstream = {}, downstream = {};
for (const [from, to] of TABLE_EDGES) {
  (downstream[from] = downstream[from] || []).push(to);
  (upstream[to] = upstream[to] || []).push(from);
}
// Layer = longest distance from any root (left-to-right data flow).
const layer = {};
function layerOf(name, seen) {
  if (layer[name] !== undefined) return layer[name];
  seen = seen || new Set();
  if (seen.has(name)) return 0;
  seen.add(name);
  const ups = upstream[name] || [];
  const value = ups.length === 0 ? 0 : 1 + Math.max(...ups.map(u => layerOf(u, seen)));
  layer[name] = value;
  return value;
}
GRAPH.nodes.forEach(n => layerOf(n.id));

const visible = new Set();
const canvas = document.getElementById('canvas');
const svg = document.getElementById('edges');
const status = document.getElementById('status');

function colId(ref) { return 'col_' + ref.replace(/[^a-zA-Z0-9_]/g, '_'); }

function render() {
  canvas.querySelectorAll('.table-card').forEach(e => e.remove());
  const perLayer = {};
  const shown = GRAPH.nodes.filter(n => visible.has(n.id));
  shown.forEach(n => { (perLayer[layer[n.id]] = perLayer[layer[n.id]] || []).push(n); });
  const cardW = 200, gapX = 90, gapY = 26;
  let maxX = 0, maxY = 0;
  Object.keys(perLayer).sort((a, b) => a - b).forEach(l => {
    let y = 20;
    perLayer[l].forEach(n => {
      const card = document.createElement('div');
      card.className = 'table-card kind-' + n.kind;
      card.style.left = (20 + l * (cardW + gapX)) + 'px';
      card.style.top = y + 'px';
      card.id = 'tbl_' + n.id;
      const canExplore = (upstream[n.id] || []).concat(downstream[n.id] || [])
        .some(t => !visible.has(t));
      card.innerHTML = '<h3>' + n.id +
        (canExplore ? ' <span class="explore" data-t="' + n.id + '">explore ⊕</span>' : '') +
        '</h3>' +
        n.columns.map(c => '<div class="col" id="' + colId(n.id + '.' + c) +
          '" data-ref="' + n.id + '.' + c + '">' + c + '</div>').join('');
      canvas.appendChild(card);
      y += 34 + n.columns.length * 22 + gapY;
      maxY = Math.max(maxY, y);
    });
    maxX = Math.max(maxX, 20 + (+l + 1) * (cardW + gapX));
  });
  svg.setAttribute('width', maxX + 200);
  svg.setAttribute('height', maxY + 200);
  drawEdges();
  status.textContent = shown.length + ' of ' + GRAPH.nodes.length + ' tables shown';
}

function anchor(ref, side) {
  const el = document.getElementById(colId(ref));
  if (!el) return null;
  const r = el.getBoundingClientRect(), c = canvas.getBoundingClientRect();
  return {
    x: (side === 'left' ? r.left : r.right) - c.left + canvas.scrollLeft,
    y: r.top + r.height / 2 - c.top + canvas.scrollTop,
  };
}

function drawEdges() {
  svg.innerHTML = '';
  const colors = { contribute: '#c5221f', reference: '#1a73e8', both: '#f29900' };
  for (const e of GRAPH.edges) {
    const a = anchor(e.from, 'right'), b = anchor(e.to, 'left');
    if (!a || !b) continue;
    const path = document.createElementNS('http://www.w3.org/2000/svg', 'path');
    const mx = (a.x + b.x) / 2;
    path.setAttribute('d', `M ${a.x} ${a.y} C ${mx} ${a.y} ${mx} ${b.y} ${b.x} ${b.y}`);
    path.setAttribute('stroke', colors[e.kind] || '#888');
    path.setAttribute('stroke-width', e.kind === 'reference' ? 1 : 1.6);
    path.setAttribute('stroke-dasharray', e.kind === 'reference' ? '4 3' : '');
    path.setAttribute('fill', 'none');
    path.setAttribute('opacity', 0.65);
    svg.appendChild(path);
  }
}

canvas.addEventListener('click', ev => {
  const explore = ev.target.closest('.explore');
  if (explore) {
    const t = explore.dataset.t;
    (upstream[t] || []).forEach(u => visible.add(u));
    (downstream[t] || []).forEach(d => visible.add(d));
    render();
  }
});

canvas.addEventListener('mouseover', ev => {
  const col = ev.target.closest('.col');
  if (!col) return;
  document.querySelectorAll('.col').forEach(c =>
    c.classList.remove('hl-origin', 'hl-contribute', 'hl-reference', 'hl-both'));
  const origin = col.dataset.ref;
  col.classList.add('hl-origin');
  // Transitive downstream highlighting (the paper's step 3 hover).
  const queue = [origin], seen = new Set([origin]);
  while (queue.length) {
    const current = queue.shift();
    for (const e of GRAPH.edges) {
      if (e.from === current && !seen.has(e.to)) {
        seen.add(e.to);
        queue.push(e.to);
        const el = document.getElementById(colId(e.to));
        if (el) el.classList.add('hl-' + e.kind);
      }
    }
  }
});

const picker = document.getElementById('picker');
GRAPH.nodes.map(n => n.id).sort().forEach(id => {
  const opt = document.createElement('option');
  opt.value = id; opt.textContent = id;
  picker.appendChild(opt);
});
picker.addEventListener('change', () => {
  if (!picker.value) return;
  visible.clear();
  visible.add(picker.value);
  render();
});
document.getElementById('show-all').addEventListener('click', () => {
  GRAPH.nodes.forEach(n => visible.add(n.id));
  render();
});

// Start with everything visible.
GRAPH.nodes.forEach(n => visible.add(n.id));
render();
window.addEventListener('resize', drawEdges);
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn html_embeds_graph_data() {
        let graph = lineagex(
            "CREATE TABLE web (cid int, page text);
             CREATE VIEW v AS SELECT page FROM web;",
        )
        .unwrap()
        .graph;
        let html = to_html(&graph);
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(html.contains("const GRAPH = {"), "graph data not embedded");
        assert!(html.contains("const TABLE_EDGES = [["), "table edges not embedded");
        assert!(html.contains("web.page"), "column refs missing");
        // Template placeholders fully replaced.
        assert!(!html.contains("__GRAPH_DATA__"));
        assert!(!html.contains("__TABLE_EDGES__"));
    }

    #[test]
    fn html_is_self_contained() {
        let graph =
            lineagex("CREATE TABLE t (a int); CREATE VIEW v AS SELECT a FROM t;").unwrap().graph;
        let html = to_html(&graph);
        assert!(!html.contains("src=\"http"), "must not load external scripts");
        assert!(!html.contains("href=\"http"), "must not load external styles");
    }
}
