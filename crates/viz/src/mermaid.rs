//! Mermaid flowchart export — renders table-level lineage as a
//! `flowchart LR` block that GitHub/GitLab render inline, with column
//! counts in the node labels. Column-level detail belongs to the DOT and
//! HTML backends; Mermaid graphs stay readable only at table granularity.

use lineagex_core::{LineageGraph, Node, NodeKind, Subgraph};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Render table-level lineage as a Mermaid flowchart.
pub fn to_mermaid(graph: &LineageGraph) -> String {
    render_mermaid(graph.nodes.values(), graph.table_edges())
}

/// Render a query answer's traversal cone ([`Subgraph`]) as a Mermaid
/// flowchart, at table granularity: relation edges are derived from the
/// cone's column edges.
pub fn subgraph_to_mermaid(subgraph: &Subgraph) -> String {
    let table_edges: BTreeSet<(String, String)> =
        subgraph.edges.iter().map(|e| (e.from.table.clone(), e.to.table.clone())).collect();
    render_mermaid(subgraph.nodes.values(), table_edges.into_iter().collect())
}

fn render_mermaid<'a>(
    nodes: impl Iterator<Item = &'a Node>,
    table_edges: Vec<(String, String)>,
) -> String {
    let mut out = String::from("flowchart LR\n");
    for node in nodes {
        let shape = match node.kind {
            // Base tables as cylinders, views as rounded boxes, externals
            // as hexagons.
            NodeKind::BaseTable => ("[(", ")]"),
            NodeKind::External => ("{{", "}}"),
            _ => ("(", ")"),
        };
        writeln!(
            out,
            "  {}{}\"{} ({} cols)\"{}",
            mermaid_id(&node.name),
            shape.0,
            node.name.replace('"', "'"),
            node.columns.len(),
            shape.1
        )
        .expect("write to string");
    }
    for (from, to) in table_edges {
        writeln!(out, "  {} --> {}", mermaid_id(&from), mermaid_id(&to)).expect("write to string");
    }
    out
}

/// Mermaid node ids must be bare words.
fn mermaid_id(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("n_{cleaned}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn renders_flowchart() {
        let graph = lineagex(
            "CREATE TABLE t (a int);
             CREATE VIEW v AS SELECT a FROM t;",
        )
        .unwrap()
        .graph;
        let mmd = to_mermaid(&graph);
        assert!(mmd.starts_with("flowchart LR"));
        assert!(mmd.contains("n_t[(\"t (1 cols)\")]"), "{mmd}");
        assert!(mmd.contains("n_v(\"v (1 cols)\")"), "{mmd}");
        assert!(mmd.contains("n_t --> n_v"), "{mmd}");
    }

    #[test]
    fn subgraph_renders_the_cone_at_table_level() {
        use lineagex_core::LineageView;
        let mut result = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t;
             CREATE VIEW unrelated AS SELECT b FROM t;",
        )
        .unwrap();
        let answer = result.query().from("t.a").downstream().run().unwrap();
        let mmd = subgraph_to_mermaid(&answer.subgraph);
        assert!(mmd.contains("n_t --> n_v"), "{mmd}");
        assert!(!mmd.contains("unrelated"), "{mmd}");
        // Cone nodes report their touched column counts.
        assert!(mmd.contains("\"t (1 cols)\""), "{mmd}");
    }

    #[test]
    fn sanitises_weird_names() {
        assert_eq!(mermaid_id("a b.c"), "n_a_b_c");
        let graph = lineagex(r#"CREATE VIEW v AS SELECT x.k FROM "odd name" x"#).unwrap().graph;
        let mmd = to_mermaid(&graph);
        assert!(mmd.contains("n_odd_name"), "{mmd}");
        // Externals render as hexagons.
        assert!(mmd.contains("{{"), "{mmd}");
    }
}
