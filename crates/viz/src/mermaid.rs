//! Mermaid flowchart export — renders table-level lineage as a
//! `flowchart LR` block that GitHub/GitLab render inline, with column
//! counts in the node labels. Column-level detail belongs to the DOT and
//! HTML backends; Mermaid graphs stay readable only at table granularity.

use lineagex_core::{LineageGraph, NodeKind};
use std::fmt::Write;

/// Render table-level lineage as a Mermaid flowchart.
pub fn to_mermaid(graph: &LineageGraph) -> String {
    let mut out = String::from("flowchart LR\n");
    for node in graph.nodes.values() {
        let shape = match node.kind {
            // Base tables as cylinders, views as rounded boxes, externals
            // as hexagons.
            NodeKind::BaseTable => ("[(", ")]"),
            NodeKind::External => ("{{", "}}"),
            _ => ("(", ")"),
        };
        writeln!(
            out,
            "  {}{}\"{} ({} cols)\"{}",
            mermaid_id(&node.name),
            shape.0,
            node.name.replace('"', "'"),
            node.columns.len(),
            shape.1
        )
        .expect("write to string");
    }
    for (from, to) in graph.table_edges() {
        writeln!(out, "  {} --> {}", mermaid_id(&from), mermaid_id(&to)).expect("write to string");
    }
    out
}

/// Mermaid node ids must be bare words.
fn mermaid_id(name: &str) -> String {
    let cleaned: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("n_{cleaned}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn renders_flowchart() {
        let graph = lineagex(
            "CREATE TABLE t (a int);
             CREATE VIEW v AS SELECT a FROM t;",
        )
        .unwrap()
        .graph;
        let mmd = to_mermaid(&graph);
        assert!(mmd.starts_with("flowchart LR"));
        assert!(mmd.contains("n_t[(\"t (1 cols)\")]"), "{mmd}");
        assert!(mmd.contains("n_v(\"v (1 cols)\")"), "{mmd}");
        assert!(mmd.contains("n_t --> n_v"), "{mmd}");
    }

    #[test]
    fn sanitises_weird_names() {
        assert_eq!(mermaid_id("a b.c"), "n_a_b_c");
        let graph = lineagex(r#"CREATE VIEW v AS SELECT x.k FROM "odd name" x"#).unwrap().graph;
        let mmd = to_mermaid(&graph);
        assert!(mmd.contains("n_odd_name"), "{mmd}");
        // Externals render as hexagons.
        assert!(mmd.contains("{{"), "{mmd}");
    }
}
