//! Graphviz DOT export.
//!
//! Each relation becomes a record-shaped node with one port per column, so
//! column-level edges attach to the right row. Edge colours follow the
//! paper's palette: contribute = black, reference = blue, both = orange.

use lineagex_core::{Edge, EdgeKind, LineageGraph, Node, NodeKind, Subgraph};
use std::fmt::Write;

/// Render a lineage graph as Graphviz DOT.
pub fn to_dot(graph: &LineageGraph) -> String {
    render_dot(graph.nodes.values(), &graph.all_edges())
}

/// Render a query answer's traversal cone ([`Subgraph`]) as Graphviz DOT
/// — the slice a [`lineagex_core::GraphQuery`] touched, instead of the
/// whole graph.
pub fn subgraph_to_dot(subgraph: &Subgraph) -> String {
    render_dot(subgraph.nodes.values(), &subgraph.edges)
}

fn render_dot<'a>(nodes: impl Iterator<Item = &'a Node>, edges: &[Edge]) -> String {
    let mut out = String::new();
    out.push_str("digraph lineage {\n");
    out.push_str("  rankdir=LR;\n  node [shape=record, fontname=\"Helvetica\"];\n");

    for node in nodes {
        let fill = match node.kind {
            NodeKind::BaseTable => "#e8f0fe",
            NodeKind::View => "#fef7e0",
            NodeKind::Table => "#e6f4ea",
            NodeKind::QueryResult => "#f3e8fd",
            NodeKind::External => "#fce8e6",
        };
        let ports: Vec<String> =
            node.columns.iter().map(|c| format!("<{}> {}", sanitize_port(c), escape(c))).collect();
        let label = if ports.is_empty() {
            escape(&node.name)
        } else {
            format!("{} | {}", escape(&node.name), ports.join(" | "))
        };
        writeln!(
            out,
            "  \"{}\" [label=\"{{{label}}}\", style=filled, fillcolor=\"{fill}\"];",
            escape(&node.name)
        )
        .expect("write to string");
    }

    for edge in edges {
        let (color, style) = match edge.kind {
            EdgeKind::Contribute => ("black", "solid"),
            EdgeKind::Reference => ("blue", "dashed"),
            EdgeKind::Both => ("orange", "solid"),
        };
        writeln!(
            out,
            "  \"{}\":{} -> \"{}\":{} [color={color}, style={style}];",
            escape(&edge.from.table),
            sanitize_port(&edge.from.column),
            escape(&edge.to.table),
            sanitize_port(&edge.to.column),
        )
        .expect("write to string");
    }

    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// Graphviz port names must be alphanumeric.
fn sanitize_port(s: &str) -> String {
    let cleaned: String =
        s.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    format!("p_{cleaned}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn dot_contains_nodes_ports_and_colored_edges() {
        let graph = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b > 0;",
        )
        .unwrap()
        .graph;
        let dot = to_dot(&graph);
        assert!(dot.starts_with("digraph lineage {"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.contains("\"t\""), "{dot}");
        assert!(dot.contains("<p_a> a"), "{dot}");
        assert!(dot.contains("color=black"), "{dot}");
        assert!(dot.contains("color=blue"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn both_edges_are_orange() {
        let graph = lineagex(
            "CREATE TABLE t (a int);
             CREATE VIEW v AS SELECT a FROM t WHERE a > 0;",
        )
        .unwrap()
        .graph;
        let dot = to_dot(&graph);
        assert!(dot.contains("color=orange"), "{dot}");
    }

    #[test]
    fn weird_column_names_are_sanitised() {
        assert_eq!(sanitize_port("?column?"), "p__column_");
        assert_eq!(sanitize_port("a b"), "p_a_b");
    }

    #[test]
    fn subgraph_renders_only_the_cone() {
        use lineagex_core::{LineageView, QuerySpec};
        let mut result = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t;
             CREATE VIEW unrelated AS SELECT b FROM t;",
        )
        .unwrap();
        let answer = result.query().from("t.a").downstream().run().unwrap();
        let dot = subgraph_to_dot(&answer.subgraph);
        assert!(dot.contains("\"v\""), "{dot}");
        assert!(!dot.contains("unrelated"), "{dot}");
        // t's untouched column b stays out of the record label.
        assert!(dot.contains("<p_a> a"), "{dot}");
        assert!(!dot.contains("<p_b> b"), "{dot}");
        // The cone renderer and the full renderer agree on shape.
        let full = QuerySpec::new().from("t.a").from("t.b").run_on(&result.graph);
        assert!(subgraph_to_dot(&full.subgraph).contains("unrelated"));
    }
}
