//! Markdown report export — a human-readable lineage summary suitable for
//! pull requests, data-governance reviews, and docs.

use lineagex_core::{LineageGraph, SourceColumn};
use std::fmt::Write;

/// Render a lineage graph as a Markdown report: summary statistics, a
/// Mermaid overview, and one section per query with its `C_con`/`C_ref`
/// tables.
pub fn to_markdown(graph: &LineageGraph) -> String {
    let mut out = String::new();
    let stats = graph.stats();

    out.push_str("# Column lineage report\n\n");
    writeln!(
        out,
        "{} relations · {} columns · {} queries · {} contribute / {} reference / {} both edges · pipeline depth {}\n",
        stats.relations,
        stats.columns,
        stats.queries,
        stats.contribute_edges,
        stats.reference_edges,
        stats.both_edges,
        stats.max_pipeline_depth
    )
    .expect("write to string");

    out.push_str("```mermaid\n");
    out.push_str(&crate::mermaid::to_mermaid(graph));
    out.push_str("```\n\n");

    for id in &graph.order {
        let q = &graph.queries[id];
        writeln!(out, "## `{id}`\n").expect("write to string");
        let tables: Vec<&str> = q.tables.iter().map(|s| s.as_str()).collect();
        writeln!(out, "reads: {}\n", code_list(&tables)).expect("write to string");
        out.push_str("| output column | contributes from (C_con) |\n");
        out.push_str("|---|---|\n");
        for col in &q.outputs {
            let sources: Vec<String> = col.ccon.iter().map(SourceColumn::to_string).collect();
            writeln!(
                out,
                "| `{}` | {} |",
                col.name,
                code_list(&sources.iter().map(String::as_str).collect::<Vec<_>>())
            )
            .expect("write to string");
        }
        let refs: Vec<String> = q.cref.iter().map(SourceColumn::to_string).collect();
        writeln!(
            out,
            "\nreferenced (C_ref): {}\n",
            code_list(&refs.iter().map(String::as_str).collect::<Vec<_>>())
        )
        .expect("write to string");
        if !q.diagnostics.is_empty() {
            let rendered: Vec<String> = q.diagnostics.iter().map(|d| d.to_string()).collect();
            writeln!(out, "> ⚠ {} diagnostic(s): {}\n", rendered.len(), rendered.join("; "))
                .expect("write to string");
        }
        if q.partial {
            writeln!(out, "> ⚠ lineage is partial (lenient degradation)\n")
                .expect("write to string");
        }
    }
    out
}

fn code_list(items: &[&str]) -> String {
    if items.is_empty() {
        return "—".to_string();
    }
    items.iter().map(|i| format!("`{i}`")).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn renders_full_report() {
        let graph = lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b > 0;",
        )
        .unwrap()
        .graph;
        let md = to_markdown(&graph);
        assert!(md.starts_with("# Column lineage report"));
        assert!(md.contains("```mermaid"), "{md}");
        assert!(md.contains("## `v`"), "{md}");
        assert!(md.contains("| `a` | `t.a` |"), "{md}");
        assert!(md.contains("referenced (C_ref): `t.b`"), "{md}");
    }

    #[test]
    fn empty_sources_render_as_dash() {
        let graph = lineagex(
            "CREATE TABLE t (a int);
             CREATE VIEW v AS SELECT count(*) AS n FROM t;",
        )
        .unwrap()
        .graph;
        let md = to_markdown(&graph);
        assert!(md.contains("| `n` | — |"), "{md}");
    }

    #[test]
    fn warnings_surface() {
        let graph = lineagex("CREATE VIEW v AS SELECT m.x FROM mystery m").unwrap().graph;
        let md = to_markdown(&graph);
        assert!(md.contains("⚠"), "{md}");
    }
}
