//! JSON artefacts: the lineage document and the graph JSON for the viewer.

use lineagex_core::{Diagnostic, EdgeKind, JsonReport, LineageGraph, ReportV2};
use serde::Serialize;

/// A node in the graph JSON.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct GraphNode {
    /// Relation name.
    pub id: String,
    /// Node kind label.
    pub kind: String,
    /// Column names.
    pub columns: Vec<String>,
}

/// An edge in the graph JSON (column granularity).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct GraphEdge {
    /// `table.column` source.
    pub from: String,
    /// `table.column` target.
    pub to: String,
    /// `contribute` / `reference` / `both`.
    pub kind: String,
}

/// The nodes-and-edges document consumed by the HTML viewer.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct GraphJson {
    /// All relation nodes.
    pub nodes: Vec<GraphNode>,
    /// All column-level edges (paper semantics: referenced sources point
    /// at every output of the referencing query).
    pub edges: Vec<GraphEdge>,
}

/// Serialise the v1 per-query lineage document (the paper's
/// `output.json`; the CLI's `--format json-v1`).
pub fn to_output_json(graph: &LineageGraph) -> String {
    JsonReport::from_graph(graph).to_json()
}

/// Serialise the versioned v2 lineage document ([`ReportV2`],
/// `schema_version: 2`): graph, per-query lineage, the given run
/// diagnostics, and stats in one deterministic document.
pub fn to_report_v2_json(graph: &LineageGraph, run_diagnostics: &[Diagnostic]) -> String {
    ReportV2::from_graph(graph, run_diagnostics).to_json()
}

/// Build the graph JSON for the viewer.
pub fn graph_json(graph: &LineageGraph) -> GraphJson {
    let nodes = graph
        .nodes
        .values()
        .map(|n| GraphNode {
            id: n.name.clone(),
            kind: format!("{:?}", n.kind),
            columns: n.columns.clone(),
        })
        .collect();
    let edges = graph
        .all_edges()
        .into_iter()
        .map(|e| GraphEdge {
            from: e.from.to_string(),
            to: e.to.to_string(),
            kind: match e.kind {
                EdgeKind::Contribute => "contribute".to_string(),
                EdgeKind::Reference => "reference".to_string(),
                EdgeKind::Both => "both".to_string(),
            },
        })
        .collect();
    GraphJson { nodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    fn graph() -> LineageGraph {
        lineagex(
            "CREATE TABLE t (a int, b int);
             CREATE VIEW v AS SELECT a FROM t WHERE b > 0;",
        )
        .unwrap()
        .graph
    }

    #[test]
    fn output_json_is_valid() {
        let json = to_output_json(&graph());
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value["queries"]["v"].is_object());
        // v1 carries no schema version; v2 declares itself.
        assert!(value["schema_version"].is_null());
    }

    #[test]
    fn report_v2_json_is_versioned() {
        let json = to_report_v2_json(&graph(), &[]);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["schema_version"], 2);
        assert_eq!(value["relations"]["t"]["kind"], "base_table");
        assert_eq!(value["queries"]["v"]["outputs"][0]["name"], "a");
        assert_eq!(value["diagnostics"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn graph_json_has_nodes_and_typed_edges() {
        let gj = graph_json(&graph());
        assert_eq!(gj.nodes.len(), 2);
        let kinds: Vec<&str> = gj.edges.iter().map(|e| e.kind.as_str()).collect();
        assert!(kinds.contains(&"contribute"));
        assert!(kinds.contains(&"reference"));
        let contribute = gj.edges.iter().find(|e| e.kind == "contribute").unwrap();
        assert_eq!(contribute.from, "t.a");
        assert_eq!(contribute.to, "v.a");
    }
}
