//! Precision / recall / F1 scoring of predicted lineage edges.

use lineagex_core::{LineageGraph, SourceColumn};
use serde::Serialize;
use std::collections::BTreeSet;

/// An edge-level score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EdgeScore {
    /// Correctly predicted edges.
    pub true_positives: usize,
    /// Predicted edges absent from the truth.
    pub false_positives: usize,
    /// True edges the prediction missed.
    pub false_negatives: usize,
}

impl EdgeScore {
    /// Precision = TP / (TP + FP); 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when there is nothing to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score a predicted edge set against the expected one.
pub fn score_edges(
    predicted: &BTreeSet<(SourceColumn, SourceColumn)>,
    expected: &BTreeSet<(SourceColumn, SourceColumn)>,
) -> EdgeScore {
    let true_positives = predicted.intersection(expected).count();
    EdgeScore {
        true_positives,
        false_positives: predicted.len() - true_positives,
        false_negatives: expected.len() - true_positives,
    }
}

/// The contribute-edge set of an extracted graph, for scoring.
pub fn graph_contribute_edges(graph: &LineageGraph) -> BTreeSet<(SourceColumn, SourceColumn)> {
    graph.contribute_edges().into_iter().map(|e| (e.from, e.to)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: &str, b: &str) -> (SourceColumn, SourceColumn) {
        let (t1, c1) = a.split_once('.').unwrap();
        let (t2, c2) = b.split_once('.').unwrap();
        (SourceColumn::new(t1, c1), SourceColumn::new(t2, c2))
    }

    #[test]
    fn perfect_prediction() {
        let truth = BTreeSet::from([edge("t.a", "v.x"), edge("t.b", "v.y")]);
        let score = score_edges(&truth, &truth);
        assert_eq!(score.precision(), 1.0);
        assert_eq!(score.recall(), 1.0);
        assert_eq!(score.f1(), 1.0);
    }

    #[test]
    fn partial_prediction() {
        let truth = BTreeSet::from([edge("t.a", "v.x"), edge("t.b", "v.y")]);
        let predicted = BTreeSet::from([edge("t.a", "v.x"), edge("t.z", "v.w")]);
        let score = score_edges(&predicted, &truth);
        assert_eq!(score.true_positives, 1);
        assert_eq!(score.false_positives, 1);
        assert_eq!(score.false_negatives, 1);
        assert!((score.precision() - 0.5).abs() < 1e-9);
        assert!((score.recall() - 0.5).abs() < 1e-9);
        assert!((score.f1() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_prediction_conventions() {
        let truth = BTreeSet::from([edge("t.a", "v.x")]);
        let score = score_edges(&BTreeSet::new(), &truth);
        assert_eq!(score.precision(), 1.0); // nothing predicted, no FPs
        assert_eq!(score.recall(), 0.0);
        assert_eq!(score.f1(), 0.0);
        let score = score_edges(&BTreeSet::new(), &BTreeSet::new());
        assert_eq!(score.f1(), 1.0);
    }
}
