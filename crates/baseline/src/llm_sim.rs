//! A rule-based simulation of the paper's GPT-4o impact-analysis
//! comparison (§IV).
//!
//! The paper reports that GPT-4o, asked to analyse the impact of changing
//! `web.page`, "is able to correctly identify all contributing columns …
//! but it is not able to reveal the columns that are referenced (not
//! directly contributing)". That is a precise behavioural statement: the
//! LLM follows the value-flow (`C_con`) transitively and ignores `C_ref`.
//! [`llm_style_impact`] encodes exactly that, so the demo's comparison
//! can run offline.

use lineagex_core::{EdgeKind, LineageGraph, SourceColumn};
use std::collections::{BTreeSet, VecDeque};

/// Impact analysis the way the paper observed an LLM doing it: transitive
/// closure over *contribution* edges only.
pub fn llm_style_impact(graph: &LineageGraph, origin: &SourceColumn) -> BTreeSet<SourceColumn> {
    let mut out = BTreeSet::new();
    let mut queue = VecDeque::from([origin.clone()]);
    let mut visited = BTreeSet::from([origin.clone()]);
    while let Some(current) = queue.pop_front() {
        for (next, kind) in graph.direct_downstream(&current) {
            // The LLM sees value flow; referenced-only edges are invisible.
            if matches!(kind, EdgeKind::Contribute | EdgeKind::Both) && visited.insert(next.clone())
            {
                out.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lineagex_core::lineagex;

    #[test]
    fn finds_contributing_misses_referenced() {
        let result = lineagex(
            "CREATE TABLE web (cid int, page text);
             CREATE VIEW v AS SELECT page AS p FROM web WHERE cid > 0;",
        )
        .unwrap();
        // page contributes to v.p — found.
        let found = llm_style_impact(&result.graph, &SourceColumn::new("web", "page"));
        assert!(found.contains(&SourceColumn::new("v", "p")));
        // cid is referenced-only — the LLM-style analysis misses it.
        let found = llm_style_impact(&result.graph, &SourceColumn::new("web", "cid"));
        assert!(found.is_empty());
    }

    #[test]
    fn transitive_contribution_followed() {
        let result = lineagex(
            "CREATE TABLE t (a int);
             CREATE VIEW v1 AS SELECT a AS b FROM t;
             CREATE VIEW v2 AS SELECT b AS c FROM v1;",
        )
        .unwrap();
        let found = llm_style_impact(&result.graph, &SourceColumn::new("t", "a"));
        assert!(found.contains(&SourceColumn::new("v1", "b")));
        assert!(found.contains(&SourceColumn::new("v2", "c")));
    }
}
