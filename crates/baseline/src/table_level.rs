//! A table-level-only lineage extractor.
//!
//! The paper's related-work discussion notes that existing tools handle
//! *table*-level lineage adequately — the hard part is columns. This
//! baseline extracts only `(source table, target)` edges, resolving CTE
//! names away (they are intermediates, not tables), and serves as the
//! sanity point where every system agrees.

use lineagex_sqlparse::ast::visit::ExprRefs;
use lineagex_sqlparse::ast::{Query, SetExpr, Statement, TableFactor, TableWithJoins};
use lineagex_sqlparse::parse_sql;
use std::collections::BTreeSet;

/// Extract table-level edges `(source, target)` from a SQL script.
pub fn table_edges(sql: &str) -> Result<BTreeSet<(String, String)>, String> {
    let statements = parse_sql(sql).map_err(|e| e.to_string())?;
    let mut edges = BTreeSet::new();
    let mut anon = 0usize;
    for stmt in &statements {
        let target = match stmt {
            Statement::CreateView { name, .. }
            | Statement::CreateTable { name, query: Some(_), .. } => name.base_name().to_string(),
            Statement::Insert { table, .. } | Statement::Update { table, .. } => {
                table.base_name().to_string()
            }
            Statement::Query(_) => {
                anon += 1;
                format!("query_{anon}")
            }
            _ => continue,
        };
        let mut sources = BTreeSet::new();
        let mut cte_names = BTreeSet::new();
        if let Some(query) = stmt.defining_query() {
            collect_query_sources(query, &mut sources, &mut cte_names);
        } else if let Some(query) = stmt.update_as_query() {
            collect_query_sources(&query, &mut sources, &mut cte_names);
        }
        for source in sources {
            if !cte_names.contains(&source) {
                edges.insert((source, target.clone()));
            }
        }
    }
    Ok(edges)
}

fn collect_query_sources(
    query: &Query,
    sources: &mut BTreeSet<String>,
    cte_names: &mut BTreeSet<String>,
) {
    if let Some(with) = &query.with {
        for cte in &with.ctes {
            cte_names.insert(cte.alias.name.value.clone());
            collect_query_sources(&cte.query, sources, cte_names);
        }
    }
    collect_body_sources(&query.body, sources, cte_names);
}

fn collect_body_sources(
    body: &SetExpr,
    sources: &mut BTreeSet<String>,
    cte_names: &mut BTreeSet<String>,
) {
    match body {
        SetExpr::Select(select) => {
            for twj in &select.from {
                collect_twj_sources(twj, sources, cte_names);
            }
            let mut exprs: Vec<&lineagex_sqlparse::ast::Expr> = Vec::new();
            if let Some(e) = &select.selection {
                exprs.push(e);
            }
            if let Some(e) = &select.having {
                exprs.push(e);
            }
            exprs.extend(select.group_by.iter());
            for expr in exprs {
                for sub in ExprRefs::from_expr(expr).subqueries {
                    collect_query_sources(sub, sources, cte_names);
                }
            }
            for item in &select.projection {
                if let lineagex_sqlparse::ast::SelectItem::UnnamedExpr(e)
                | lineagex_sqlparse::ast::SelectItem::ExprWithAlias { expr: e, .. } = item
                {
                    for sub in ExprRefs::from_expr(e).subqueries {
                        collect_query_sources(sub, sources, cte_names);
                    }
                }
            }
        }
        SetExpr::Query(q) => collect_query_sources(q, sources, cte_names),
        SetExpr::SetOperation { left, right, .. } => {
            collect_body_sources(left, sources, cte_names);
            collect_body_sources(right, sources, cte_names);
        }
        SetExpr::Values(_) => {}
    }
}

fn collect_twj_sources(
    twj: &TableWithJoins,
    sources: &mut BTreeSet<String>,
    cte_names: &mut BTreeSet<String>,
) {
    collect_factor_sources(&twj.relation, sources, cte_names);
    for join in &twj.joins {
        collect_factor_sources(&join.relation, sources, cte_names);
    }
}

fn collect_factor_sources(
    factor: &TableFactor,
    sources: &mut BTreeSet<String>,
    cte_names: &mut BTreeSet<String>,
) {
    match factor {
        TableFactor::Table { name, .. } => {
            sources.insert(name.base_name().to_string());
        }
        TableFactor::Derived { subquery, .. } => {
            collect_query_sources(subquery, sources, cte_names)
        }
        TableFactor::NestedJoin(twj) => collect_twj_sources(twj, sources, cte_names),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_view_edges() {
        let edges = table_edges("CREATE VIEW v AS SELECT a FROM t JOIN u ON t.x = u.x").unwrap();
        assert_eq!(edges, BTreeSet::from([("t".into(), "v".into()), ("u".into(), "v".into())]));
    }

    #[test]
    fn cte_names_are_not_sources() {
        let edges =
            table_edges("CREATE VIEW v AS WITH c AS (SELECT a FROM base) SELECT a FROM c").unwrap();
        assert_eq!(edges, BTreeSet::from([("base".into(), "v".into())]));
    }

    #[test]
    fn subquery_and_setop_sources_found() {
        let edges = table_edges(
            "CREATE VIEW v AS
               SELECT a FROM t WHERE a IN (SELECT x FROM lookup)
               UNION SELECT b FROM u",
        )
        .unwrap();
        let sources: BTreeSet<&str> = edges.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(sources, BTreeSet::from(["t", "lookup", "u"]));
    }

    #[test]
    fn update_edges_include_target_scan() {
        let edges = table_edges("UPDATE t SET a = u.b FROM u WHERE t.id = u.id").unwrap();
        assert!(edges.contains(&("u".into(), "t".into())));
        assert!(edges.contains(&("t".into(), "t".into())));
    }

    #[test]
    fn matches_lineagex_table_lineage_on_example1() {
        // Table-level lineage is the easy part: the naive extractor agrees
        // with the full system.
        use lineagex_core::lineagex;
        let log = "
            CREATE TABLE customers (cid int, name text);
            CREATE TABLE web (cid int, page text);
            CREATE VIEW webinfo AS SELECT c.cid, w.page FROM customers c JOIN web w ON c.cid = w.cid;
            CREATE VIEW info AS SELECT * FROM webinfo;
        ";
        let ours: BTreeSet<(String, String)> =
            lineagex(log).unwrap().graph.table_edges().into_iter().collect();
        let naive = table_edges(log).unwrap();
        assert_eq!(ours, naive);
    }
}
