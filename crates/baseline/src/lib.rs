//! # lineagex-baseline
//!
//! Comparison baselines for the paper's evaluation:
//!
//! * [`sqllineage_like`] — a faithful reimplementation of the *behaviour*
//!   of single-statement, metadata-free lineage tools such as SQLLineage:
//!   no Query Dictionary, no schema inference, wildcards passed through as
//!   literal `*` entries, and set-operation branches appended as extra
//!   output columns. These are exactly the failure modes Fig. 2 of the
//!   paper highlights (red boxes), reproduced honestly rather than
//!   caricatured: on SQL without stars/set-ops/prefix-less columns the
//!   baseline is correct.
//! * [`llm_sim`] — the paper's GPT-4o observation encoded as a rule: an
//!   LLM-style analyst finds columns *contributing* to a change
//!   transitively but misses *referenced-only* columns (join keys, WHERE
//!   predicates). We cannot call an LLM offline; the paper states its
//!   behaviour precisely enough to simulate.
//! * [`metrics`] — precision/recall/F1 scoring of predicted edges against
//!   ground truth, shared by the accuracy harnesses.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod llm_sim;
pub mod metrics;
pub mod sqllineage_like;
pub mod table_level;

pub use metrics::{score_edges, EdgeScore};
pub use sqllineage_like::SqlLineageLike;
