//! A single-statement, metadata-free lineage extractor reproducing the
//! behaviour of tools like SQLLineage.
//!
//! Design constraints copied from the real tool family:
//!
//! 1. **Each statement is analysed in isolation** — no Query Dictionary,
//!    so a view referencing another view sees only its name, never its
//!    columns.
//! 2. **No schema metadata** — `SELECT *` and `t.*` cannot be expanded;
//!    they are emitted as literal `*` columns (Fig. 2's
//!    `webact.* → info.*` red box).
//! 3. **Set-operation branches are concatenated** — each branch's
//!    projection list is appended to the target's outputs, producing the
//!    "four extra columns" of Fig. 2.
//! 4. **Prefix-less columns resolve only when the FROM clause has exactly
//!    one relation**; otherwise the source is unknown and the edge is
//!    dropped.

use lineagex_core::{
    LineageGraph, Node, NodeKind, OutputColumn, QueryKind, QueryLineage, SourceColumn,
};
use lineagex_sqlparse::ast::visit::{output_name, ExprRefs};
use lineagex_sqlparse::ast::{
    Query, Select, SelectItem, SetExpr, Statement, TableFactor, TableWithJoins,
};
use lineagex_sqlparse::parse_sql;
use std::collections::{BTreeMap, BTreeSet};

/// The SQLLineage-like baseline extractor.
#[derive(Debug, Clone, Default)]
pub struct SqlLineageLike;

/// Alias → table-name map for one SELECT block.
type AliasMap = BTreeMap<String, String>;

impl SqlLineageLike {
    /// Create the baseline extractor.
    pub fn new() -> Self {
        SqlLineageLike
    }

    /// Extract lineage from a SQL script, one statement at a time.
    pub fn extract(&self, sql: &str) -> Result<LineageGraph, String> {
        let statements = parse_sql(sql).map_err(|e| e.to_string())?;
        let mut graph = LineageGraph::default();
        let mut anon = 0usize;
        for stmt in &statements {
            let (id, kind) = match stmt {
                Statement::CreateView { name, materialized, .. } => (
                    name.base_name().to_string(),
                    QueryKind::View { materialized: *materialized },
                ),
                Statement::CreateTable { name, query: Some(_), .. } => {
                    (name.base_name().to_string(), QueryKind::TableAs)
                }
                Statement::CreateTable { .. }
                | Statement::Drop { .. }
                // The tool family largely ignores DML mutations and
                // transaction/EXPLAIN noise.
                | Statement::Update { .. }
                | Statement::Delete { .. }
                | Statement::Merge(_)
                | Statement::Noise(_) => continue,
                Statement::Insert { table, .. } => {
                    (table.base_name().to_string(), QueryKind::Insert)
                }
                Statement::Query(_) => {
                    anon += 1;
                    (format!("query_{anon}"), QueryKind::Select)
                }
            };
            let Some(query) = stmt.defining_query() else { continue };
            let mut outputs = Vec::new();
            let mut tables = BTreeSet::new();
            let mut cte_names = BTreeSet::new();
            process_query(query, &mut outputs, &mut tables, &mut cte_names);
            // CTE names leak neither into table lineage (the real tool
            // prunes them) — but the columns resolved through them keep the
            // CTE name as source table (intermediate leak).
            let tables: BTreeSet<String> =
                tables.into_iter().filter(|t| !cte_names.contains(t)).collect();

            let lineage = QueryLineage {
                id: id.clone(),
                kind,
                outputs,
                cref: BTreeSet::new(), // the tool has no referenced-column concept
                tables,
                diagnostics: Vec::new(),
                partial: false,
            };
            graph.nodes.insert(
                id.clone(),
                Node {
                    name: id.clone(),
                    kind: NodeKind::View,
                    columns: lineage.outputs.iter().map(|o| o.name.clone()).collect(),
                },
            );
            graph.order.push(id.clone());
            graph.queries.insert(id, lineage);
        }
        Ok(graph)
    }
}

/// Walk a query: CTE bodies are analysed for their own side effects but
/// not composed; every set-operation branch appends its projections.
fn process_query(
    query: &Query,
    outputs: &mut Vec<OutputColumn>,
    tables: &mut BTreeSet<String>,
    cte_names: &mut BTreeSet<String>,
) {
    if let Some(with) = &query.with {
        for cte in &with.ctes {
            cte_names.insert(cte.alias.name.value.clone());
            // The tool scans CTE bodies for table names only.
            let mut cte_outputs = Vec::new();
            process_query(&cte.query, &mut cte_outputs, tables, cte_names);
        }
    }
    process_set_expr(&query.body, outputs, tables);
}

fn process_set_expr(
    body: &SetExpr,
    outputs: &mut Vec<OutputColumn>,
    tables: &mut BTreeSet<String>,
) {
    match body {
        SetExpr::Select(select) => process_select(select, outputs, tables),
        SetExpr::Query(q) => process_set_expr(&q.body, outputs, tables),
        SetExpr::SetOperation { left, right, .. } => {
            // Failure mode 3: both branches' projections appended.
            process_set_expr(left, outputs, tables);
            process_set_expr(right, outputs, tables);
        }
        SetExpr::Values(_) => {}
    }
}

fn collect_from(
    from: &[TableWithJoins],
    aliases: &mut AliasMap,
    tables: &mut BTreeSet<String>,
    outputs: &mut Vec<OutputColumn>,
) {
    for twj in from {
        collect_factor(&twj.relation, aliases, tables, outputs);
        for join in &twj.joins {
            collect_factor(&join.relation, aliases, tables, outputs);
        }
    }
}

fn collect_factor(
    factor: &TableFactor,
    aliases: &mut AliasMap,
    tables: &mut BTreeSet<String>,
    outputs: &mut Vec<OutputColumn>,
) {
    match factor {
        TableFactor::Table { name, alias } => {
            let base = name.base_name().to_string();
            let binding =
                alias.as_ref().map(|a| a.name.value.clone()).unwrap_or_else(|| base.clone());
            aliases.insert(binding, base.clone());
            tables.insert(base);
        }
        TableFactor::Derived { subquery, alias, .. } => {
            // The subquery's own sources are scanned; the derived alias
            // resolves to nothing (no composition).
            let mut sub_outputs = Vec::new();
            let mut cte_names = BTreeSet::new();
            process_query(subquery, &mut sub_outputs, tables, &mut cte_names);
            let _ = outputs;
            if let Some(alias) = alias {
                aliases.insert(alias.name.value.clone(), alias.name.value.clone());
            }
        }
        TableFactor::NestedJoin(twj) => {
            collect_factor(&twj.relation, aliases, tables, outputs);
            for join in &twj.joins {
                collect_factor(&join.relation, aliases, tables, outputs);
            }
        }
    }
}

fn process_select(select: &Select, outputs: &mut Vec<OutputColumn>, tables: &mut BTreeSet<String>) {
    let mut aliases = AliasMap::new();
    collect_from(&select.from, &mut aliases, tables, outputs);
    let single_table = if aliases.len() == 1 { aliases.values().next().cloned() } else { None };

    for item in &select.projection {
        match item {
            SelectItem::Wildcard => {
                // Failure mode 2: a literal star entry per source table.
                for table in aliases.values() {
                    outputs.push(OutputColumn::new(
                        "*",
                        BTreeSet::from([SourceColumn::new(table, "*")]),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(name) => {
                let binding = name.base_name();
                let table = aliases.get(binding).cloned().unwrap_or_else(|| binding.to_string());
                outputs
                    .push(OutputColumn::new("*", BTreeSet::from([SourceColumn::new(table, "*")])));
            }
            SelectItem::UnnamedExpr(expr) => {
                let sources = resolve_sources(expr, &aliases, &single_table);
                outputs.push(OutputColumn::new(output_name(expr), sources));
            }
            SelectItem::ExprWithAlias { expr, alias } => {
                let sources = resolve_sources(expr, &aliases, &single_table);
                outputs.push(OutputColumn::new(alias.value.clone(), sources));
            }
        }
    }
}

/// Resolve an expression's column references using only the alias map.
fn resolve_sources(
    expr: &lineagex_sqlparse::ast::Expr,
    aliases: &AliasMap,
    single_table: &Option<String>,
) -> BTreeSet<SourceColumn> {
    let refs = ExprRefs::from_expr(expr);
    let mut out = BTreeSet::new();
    for col in &refs.columns {
        match col.table() {
            Some(prefix) => {
                let table = aliases.get(prefix).cloned().unwrap_or_else(|| prefix.to_string());
                out.insert(SourceColumn::new(table, &col.column.value));
            }
            None => {
                // Failure mode 4: prefix-less columns resolve only with a
                // single FROM relation.
                if let Some(table) = single_table {
                    out.insert(SourceColumn::new(table, &col.column.value));
                }
            }
        }
    }
    // Subqueries in expressions: only their table names are picked up.
    for sq in &refs.subqueries {
        let mut sub_outputs = Vec::new();
        let mut sub_tables = BTreeSet::new();
        let mut cte_names = BTreeSet::new();
        process_query(sq, &mut sub_outputs, &mut sub_tables, &mut cte_names);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_on_simple_prefixed_sql() {
        // Without stars/set-ops the baseline gets lineage right.
        let graph = SqlLineageLike::new()
            .extract("CREATE VIEW v AS SELECT c.name AS n FROM customers c")
            .unwrap();
        let v = &graph.queries["v"];
        assert_eq!(v.output_names(), vec!["n"]);
        assert_eq!(v.outputs[0].ccon, BTreeSet::from([SourceColumn::new("customers", "name")]));
        assert!(v.tables.contains("customers"));
    }

    #[test]
    fn wildcard_becomes_star_entry() {
        let graph =
            SqlLineageLike::new().extract("CREATE VIEW v AS SELECT w.* FROM webact w").unwrap();
        let v = &graph.queries["v"];
        assert_eq!(v.output_names(), vec!["*"]);
        assert_eq!(v.outputs[0].ccon, BTreeSet::from([SourceColumn::new("webact", "*")]));
    }

    #[test]
    fn setop_branches_appended_as_extra_outputs() {
        // The paper's webact case: 4 + 4 = 8 output columns.
        let graph = SqlLineageLike::new()
            .extract(
                "CREATE VIEW webact AS
                 SELECT w.wcid, w.wdate, w.wpage, w.wreg FROM webinfo w
                 INTERSECT
                 SELECT w1.cid, w1.date, w1.page, w1.reg FROM web w1",
            )
            .unwrap();
        let v = &graph.queries["webact"];
        assert_eq!(v.outputs.len(), 8);
        assert_eq!(
            v.output_names(),
            vec!["wcid", "wdate", "wpage", "wreg", "cid", "date", "page", "reg"]
        );
    }

    #[test]
    fn unprefixed_column_dropped_with_multiple_tables() {
        let graph = SqlLineageLike::new()
            .extract("CREATE VIEW v AS SELECT name FROM customers c, orders o")
            .unwrap();
        let v = &graph.queries["v"];
        assert!(v.outputs[0].ccon.is_empty(), "source should be unresolvable");
    }

    #[test]
    fn no_cross_query_schema_composition() {
        let graph = SqlLineageLike::new()
            .extract(
                "CREATE VIEW a AS SELECT c.cid AS k FROM customers c;
                 CREATE VIEW b AS SELECT * FROM a;",
            )
            .unwrap();
        // b's star cannot expand because the tool never consults a's output.
        let b = &graph.queries["b"];
        assert_eq!(b.output_names(), vec!["*"]);
    }

    #[test]
    fn cref_is_always_empty() {
        let graph = SqlLineageLike::new()
            .extract("CREATE VIEW v AS SELECT c.name FROM customers c WHERE c.age > 1")
            .unwrap();
        assert!(graph.queries["v"].cref.is_empty());
    }
}
