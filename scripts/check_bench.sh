#!/usr/bin/env bash
# Bench-regression gate: re-runs engine_bench, query_bench, and
# serve_bench in quick mode (BENCH_QUICK=1 — same 200-view workload,
# fewer repetitions) in a
# scratch directory, then fails if the fresh numbers violate the
# workspace's perf contracts:
#
#   * lenient_overhead_pct  < 5     (lenient mode may not tax clean logs)
#   * dialect_overhead_pct  < 3     (the dialect front end may not tax
#                                    pure-ANSI input)
#   * incremental.speedup   >= 2    (cone re-ingest must beat a full
#                                    re-extraction)
#   * downstream_cone_qps   >= 70% of the committed BENCH_query.json
#   * upstream_closure_qps  >= 70% of the committed BENCH_query.json
#   * serve mixed_qps       >= 70% of the committed BENCH_serve.json
#   * serve refresh_p99_ratio <= 3  (read tail under churn vs idle)
#   * serve obs_overhead_pct  < 3   (metrics recording must stay
#                                    invisible at request granularity)
#
# 10k-view scale tier (engine_bench "scale" block; the *_10k key names
# are unique on purpose so json_num's first-match grep stays correct):
#
#   * sharded_speedup_10k    >= 1.2 * floor  (component-sharded
#                                    re-extraction vs flat level barriers;
#                                    on a single-core host the win is
#                                    overhead elimination only — one
#                                    thread-pool spawn per refresh instead
#                                    of one per topological level — so the
#                                    measured ratio is ~1.1-1.2x there and
#                                    grows with real cores)
#   * refresh_speedup_10k    >= 10 * floor   (dirty-cone refresh vs full
#                                    re-extraction — the sub-linear claim)
#   * cold_start_speedup_10k >= 6 * floor    (snapshot load + publish vs
#                                    re-parsing the SQL log)
#
# The cold-start bound is deliberately below the headline "50x" ambition:
# on the single-core reference machine the binary decode is string-alloc
# bound (~60 ms for 10k views vs ~450 ms for the SQL path, i.e. ~7x), and
# the SQL side itself got faster when publish went copy-on-write. 50x
# needs a zero-copy/mmap snapshot layout; the gate pins what the current
# format actually delivers so a regression (e.g. an accidental per-insert
# tree rebuild in decode) still fails loudly.
#
# The committed qps numbers are a *machine baseline*: they were measured
# on the machine that committed them, so the 70% floor assumes CI runs
# on comparable hardware. On a slower runner, scale the floor instead of
# deleting the gate, e.g. CHECK_BENCH_FLOOR=0.3 scripts/check_bench.sh.
# The machine-independent contract (indexed >= 5x the string walk) is
# asserted inside query_bench itself on every run, including this one.
#
# The committed BENCH_*.json files in the repo root are never touched:
# the quick run writes into a temp dir. Regenerate the committed numbers
# intentionally by running the binaries from the repo root:
#
#   cargo run --release -p lineagex-bench --bin engine_bench
#   cargo run --release -p lineagex-bench --bin query_bench
#   cargo run --release -p lineagex-bench --bin serve_bench
set -euo pipefail

floor=${CHECK_BENCH_FLOOR:-0.7}
cd "$(dirname "$0")/.."
root=$(pwd)

echo "building bench binaries (release)"
cargo build --release -q -p lineagex-bench --bin engine_bench --bin query_bench --bin serve_bench

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "running engine_bench + query_bench + serve_bench (BENCH_QUICK=1) in $tmp"
(cd "$tmp" && BENCH_QUICK=1 "$root/target/release/engine_bench" >engine_bench.log) || {
    echo "engine_bench failed:" >&2
    cat "$tmp/engine_bench.log" >&2
    exit 1
}
(cd "$tmp" && BENCH_QUICK=1 "$root/target/release/query_bench" >query_bench.log) || {
    echo "query_bench failed:" >&2
    cat "$tmp/query_bench.log" >&2
    exit 1
}
(cd "$tmp" && BENCH_QUICK=1 "$root/target/release/serve_bench" >serve_bench.log) || {
    echo "serve_bench failed:" >&2
    cat "$tmp/serve_bench.log" >&2
    exit 1
}

# Extract a numeric field from a flat pretty-printed JSON file. The
# nested incremental object is covered too: its keys ("speedup", ...)
# don't collide with any top-level key.
json_num() {
    local value
    value=$(grep -oE "\"$2\": *-?[0-9.eE+-]+" "$1" | head -1 | sed 's/.*: *//')
    if [ -z "$value" ]; then
        echo "missing key \"$2\" in $1" >&2
        exit 1
    fi
    printf '%s\n' "$value"
}

failures=0
# check <label> <actual> <op> <bound>
check() {
    if awk -v a="$2" -v b="$4" "BEGIN { exit !(a $3 b) }"; then
        printf '  ok    %-42s %14s  (want %s %s)\n' "$1" "$2" "$3" "$4"
    else
        printf '  FAIL  %-42s %14s  (want %s %s)\n' "$1" "$2" "$3" "$4"
        failures=$((failures + 1))
    fi
}

fresh_engine="$tmp/BENCH_engine.json"
fresh_query="$tmp/BENCH_query.json"
fresh_serve="$tmp/BENCH_serve.json"
committed_query="$root/BENCH_query.json"
committed_serve="$root/BENCH_serve.json"

lenient=$(json_num "$fresh_engine" lenient_overhead_pct)
dialect=$(json_num "$fresh_engine" dialect_overhead_pct)
incremental=$(json_num "$fresh_engine" speedup)
sharded_10k=$(json_num "$fresh_engine" sharded_speedup_10k)
refresh_10k=$(json_num "$fresh_engine" refresh_speedup_10k)
cold_10k=$(json_num "$fresh_engine" cold_start_speedup_10k)
down=$(json_num "$fresh_query" downstream_cone_qps)
up=$(json_num "$fresh_query" upstream_closure_qps)
mixed=$(json_num "$fresh_serve" mixed_qps)
ratio=$(json_num "$fresh_serve" refresh_p99_ratio)
obs_overhead=$(json_num "$fresh_serve" obs_overhead_pct)
down_committed=$(json_num "$committed_query" downstream_cone_qps)
up_committed=$(json_num "$committed_query" upstream_closure_qps)
mixed_committed=$(json_num "$committed_serve" mixed_qps)
down_floor=$(awk -v v="$down_committed" -v f="$floor" 'BEGIN { printf "%.4f", f * v }')
up_floor=$(awk -v v="$up_committed" -v f="$floor" 'BEGIN { printf "%.4f", f * v }')
mixed_floor=$(awk -v v="$mixed_committed" -v f="$floor" 'BEGIN { printf "%.4f", f * v }')

sharded_floor=$(awk -v f="$floor" 'BEGIN { printf "%.4f", f * 1.2 }')
refresh_floor=$(awk -v f="$floor" 'BEGIN { printf "%.4f", f * 10 }')
cold_floor=$(awk -v f="$floor" 'BEGIN { printf "%.4f", f * 6 }')

echo "bench-regression gate (floor = committed * $floor):"
check "lenient_overhead_pct" "$lenient" "<" 5
check "dialect_overhead_pct" "$dialect" "<" 3
check "incremental.speedup" "$incremental" ">=" 2
check "sharded_speedup_10k" "$sharded_10k" ">=" "$sharded_floor"
check "refresh_speedup_10k" "$refresh_10k" ">=" "$refresh_floor"
check "cold_start_speedup_10k" "$cold_10k" ">=" "$cold_floor"
check "downstream_cone_qps vs committed floor" "$down" ">=" "$down_floor"
check "upstream_closure_qps vs committed floor" "$up" ">=" "$up_floor"
check "serve mixed_qps vs committed floor" "$mixed" ">=" "$mixed_floor"
check "serve refresh_p99_ratio" "$ratio" "<=" 3
check "serve obs_overhead_pct" "$obs_overhead" "<" 3

if [ "$failures" -ne 0 ]; then
    echo "bench-regression gate: $failures check(s) failed" >&2
    echo "quick-run artifacts:" >&2
    cat "$fresh_engine" "$fresh_query" "$fresh_serve" >&2
    exit 1
fi
echo "bench-regression gate: all green"
