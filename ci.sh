#!/usr/bin/env bash
# CI gate for the LineageX workspace. Mirrors what a hosted pipeline
# would run; keep it in sync with docs/ARCHITECTURE.md's conventions.
#
#   ./ci.sh          # run everything
#   ./ci.sh fast     # skip the release build (dev-profile tests only)
set -euo pipefail
cd "$(dirname "$0")"

fast=${1:-}

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$fast" != "fast" ]; then
    step "cargo build --release (tier-1, part 1)"
    cargo build --release
fi

# Subsumes tier-1's `cargo test -q`: the workspace run includes the root
# façade package (its integration tests and doc-tests).
step "cargo test -q --workspace (tier-1, part 2 + all member crates)"
cargo test -q --workspace

# The resilience corpus is part of the workspace run above, but gate it
# explicitly: lenient extraction over tests/corpus/messy_log.sql must
# keep extracting every well-formed statement and keep the golden
# diagnostics rendering stable (UPDATE_GOLDEN=1 regenerates).
step "cargo test -q --test resilience (messy-log corpus + isolation property)"
cargo test -q --test resilience

# Public-API snapshot guard: the lineagex::prelude export list and the
# Example 1 ReportV2 document are golden files (UPDATE_GOLDEN=1
# regenerates) — accidental API or wire-format breaks fail the build.
step "cargo test -q --test api_surface (prelude + ReportV2 golden guard)"
cargo test -q --test api_surface

# The workspace run above already builds and tests lineagex-engine; the
# runnable session walkthrough (which asserts cone-sized re-extraction)
# is the one engine surface it doesn't exercise.
step "cargo run --example incremental_session"
cargo run --quiet --example incremental_session

# The unified-surface walkthrough asserts (at runtime) that GraphQuery
# answers and ReportV2 bytes are identical across batch and session
# backends.
step "cargo run --example query_api"
cargo run --quiet --example query_api

step "cargo doc --no-deps --workspace (docs must keep compiling)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

step "all green"
