#!/usr/bin/env bash
# CI gate for the LineageX workspace. Mirrors what a hosted pipeline
# would run — and is mirrored step-for-step by
# .github/workflows/ci.yml; keep all three in sync with
# docs/ARCHITECTURE.md's conventions.
#
#   ./ci.sh          # run everything (incl. the bench-regression gate)
#   ./ci.sh fast     # skip the release build and the bench gate
#                    # (dev-profile tests only)
#   ./ci.sh regen    # run every UPDATE_GOLDEN=1 refresh in one command:
#                    # tests/golden/messy_log_diagnostics.txt (resilience),
#                    # tests/golden/prelude_api.txt,
#                    # tests/golden/report_v2.json (api_surface), and
#                    # tests/golden/serve_proto.txt (serve_protocol) —
#                    # then exit. Review the diff before committing.
#
# Every step prints its wall-clock duration when it finishes, so slow
# steps are visible in CI logs.
set -euo pipefail
cd "$(dirname "$0")"

mode=${1:-}

step_name=""
step_ts=$SECONDS
step() {
    local now=$SECONDS
    if [ -n "$step_name" ]; then
        printf '    [%3ds] %s\n' "$((now - step_ts))" "$step_name"
    fi
    step_name="$*"
    step_ts=$now
    printf '\n==> %s\n' "$*"
}

if [ "$mode" = "regen" ]; then
    step "UPDATE_GOLDEN=1 cargo test -q --test resilience (messy-log diagnostics golden)"
    UPDATE_GOLDEN=1 cargo test -q --test resilience
    step "UPDATE_GOLDEN=1 cargo test -q --test api_surface (prelude + ReportV2 goldens)"
    UPDATE_GOLDEN=1 cargo test -q --test api_surface
    step "UPDATE_GOLDEN=1 cargo test -q --test serve_protocol (serve wire transcript golden)"
    UPDATE_GOLDEN=1 cargo test -q --test serve_protocol
    step "goldens regenerated"
    git --no-pager status --short tests/golden/ || true
    exit 0
fi

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$mode" != "fast" ]; then
    step "cargo build --release (tier-1, part 1)"
    cargo build --release
fi

# Subsumes tier-1's `cargo test -q`: the workspace run includes the root
# façade package (its integration tests and doc-tests).
step "cargo test -q --workspace (tier-1, part 2 + all member crates)"
cargo test -q --workspace

# The resilience corpus is part of the workspace run above, but gate it
# explicitly: lenient extraction over tests/corpus/messy_log.sql must
# keep extracting every well-formed statement and keep the golden
# diagnostics rendering stable (./ci.sh regen regenerates).
step "cargo test -q --test resilience (messy-log corpus + isolation property)"
cargo test -q --test resilience

# The dialect corpus runner: every dialect fixture under
# tests/corpus/dialects/ must go through the full pipeline under its own
# dialect with zero error-severity diagnostics (strict and lenient), and
# the engine session must settle to the batch graph on each.
step "cargo test -q --test dialect_corpus (per-dialect corpus runner)"
cargo test -q --test dialect_corpus

# Public-API snapshot guard: the lineagex::prelude export list and the
# Example 1 ReportV2 document are golden files (./ci.sh regen
# regenerates) — accidental API or wire-format breaks fail the build.
step "cargo test -q --test api_surface (prelude + ReportV2 golden guard)"
cargo test -q --test api_surface

# The serve battery, gated explicitly like the resilience corpus: the
# golden wire transcript (protocol drift fails the build; ./ci.sh regen
# regenerates) and the concurrency soak (every served revision must
# byte-match a batch replay of that statement prefix).
step "cargo test -q --test serve_protocol --test serve_concurrency (serve battery)"
cargo test -q --test serve_protocol
cargo test -q --test serve_concurrency

# Serve smoke: a real `lineagex serve --verbose` process on an
# OS-assigned port, a scripted `lineagex client` round-trip (ping,
# ingest, query), a metrics scrape that must show the traffic (non-zero
# request counters, a populated ingest histogram), and a clean wire
# shutdown that the server process must survive to exit 0.
step "serve smoke (lineagex serve + client round-trip + metrics scrape + wire shutdown)"
cargo build -q -p lineagex-cli
smoke_dir=$(mktemp -d)
target/debug/lineagex serve --addr 127.0.0.1:0 --verbose \
    >"$smoke_dir/serve.log" 2>"$smoke_dir/serve.events.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(grep -oE '127\.0\.0\.1:[0-9]+' "$smoke_dir/serve.log" | head -1 || true)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve smoke: server never printed its address" >&2
    cat "$smoke_dir/serve.log" >&2
    kill "$serve_pid" 2>/dev/null || true
    rm -rf "$smoke_dir"
    exit 1
fi
printf 'CREATE TABLE web (cid int, page text);\nCREATE VIEW v AS SELECT page FROM web;\n' \
    >"$smoke_dir/smoke.sql"
target/debug/lineagex client "$addr" ping
target/debug/lineagex client "$addr" ingest "$smoke_dir/smoke.sql"
target/debug/lineagex client "$addr" query web.page
# Scrape the observability registry: the scripted traffic above must be
# visible as non-zero serve counters and a populated ingest histogram.
target/debug/lineagex client "$addr" metrics >"$smoke_dir/metrics.json"
grep -qE '"serve\.requests":[1-9]' "$smoke_dir/metrics.json"
grep -qE '"engine\.ingest_us":\{"count":[1-9]' "$smoke_dir/metrics.json"
target/debug/lineagex client "$addr" shutdown
wait "$serve_pid"
grep -q "server stopped" "$smoke_dir/serve.log"
# --verbose wrote one structured event line per connection to stderr.
grep -q "event=conn_open" "$smoke_dir/serve.events.log"
grep -q "event=publish" "$smoke_dir/serve.events.log"
rm -rf "$smoke_dir"

# The workspace run above already builds and tests lineagex-engine; the
# runnable session walkthrough (which asserts cone-sized re-extraction)
# is the one engine surface it doesn't exercise.
step "cargo run --example incremental_session"
cargo run --quiet --example incremental_session

# The unified-surface walkthrough asserts (at runtime) that GraphQuery
# answers and ReportV2 bytes are identical across batch and session
# backends.
step "cargo run --example query_api"
cargo run --quiet --example query_api

step "cargo doc --no-deps --workspace (docs must keep compiling)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Perf contracts: quick re-runs of engine_bench/query_bench/serve_bench
# must keep lenient overhead < 5%, incremental speedup >= 2x, indexed
# query throughput within 30% of the committed BENCH_query.json, serve
# mixed throughput within 30% of the committed BENCH_serve.json, read
# p99 under churn within 3x of idle, and obs recording overhead under
# 3%. Needs the release profile, so `fast` skips it.
if [ "$mode" != "fast" ]; then
    step "scripts/check_bench.sh (bench-regression gate)"
    scripts/check_bench.sh
fi

step "all green"
