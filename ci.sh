#!/usr/bin/env bash
# CI gate for the LineageX workspace. Mirrors what a hosted pipeline
# would run — and is mirrored step-for-step by
# .github/workflows/ci.yml; keep all three in sync with
# docs/ARCHITECTURE.md's conventions.
#
#   ./ci.sh          # run everything (incl. the bench-regression gate)
#   ./ci.sh fast     # skip the release build and the bench gate
#                    # (dev-profile tests only)
#   ./ci.sh regen    # run every UPDATE_GOLDEN=1 refresh in one command:
#                    # tests/golden/messy_log_diagnostics.txt (resilience),
#                    # tests/golden/prelude_api.txt and
#                    # tests/golden/report_v2.json (api_surface) — then
#                    # exit. Review the diff before committing.
#
# Every step prints its wall-clock duration when it finishes, so slow
# steps are visible in CI logs.
set -euo pipefail
cd "$(dirname "$0")"

mode=${1:-}

step_name=""
step_ts=$SECONDS
step() {
    local now=$SECONDS
    if [ -n "$step_name" ]; then
        printf '    [%3ds] %s\n' "$((now - step_ts))" "$step_name"
    fi
    step_name="$*"
    step_ts=$now
    printf '\n==> %s\n' "$*"
}

if [ "$mode" = "regen" ]; then
    step "UPDATE_GOLDEN=1 cargo test -q --test resilience (messy-log diagnostics golden)"
    UPDATE_GOLDEN=1 cargo test -q --test resilience
    step "UPDATE_GOLDEN=1 cargo test -q --test api_surface (prelude + ReportV2 goldens)"
    UPDATE_GOLDEN=1 cargo test -q --test api_surface
    step "goldens regenerated"
    git --no-pager status --short tests/golden/ || true
    exit 0
fi

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "$mode" != "fast" ]; then
    step "cargo build --release (tier-1, part 1)"
    cargo build --release
fi

# Subsumes tier-1's `cargo test -q`: the workspace run includes the root
# façade package (its integration tests and doc-tests).
step "cargo test -q --workspace (tier-1, part 2 + all member crates)"
cargo test -q --workspace

# The resilience corpus is part of the workspace run above, but gate it
# explicitly: lenient extraction over tests/corpus/messy_log.sql must
# keep extracting every well-formed statement and keep the golden
# diagnostics rendering stable (./ci.sh regen regenerates).
step "cargo test -q --test resilience (messy-log corpus + isolation property)"
cargo test -q --test resilience

# Public-API snapshot guard: the lineagex::prelude export list and the
# Example 1 ReportV2 document are golden files (./ci.sh regen
# regenerates) — accidental API or wire-format breaks fail the build.
step "cargo test -q --test api_surface (prelude + ReportV2 golden guard)"
cargo test -q --test api_surface

# The workspace run above already builds and tests lineagex-engine; the
# runnable session walkthrough (which asserts cone-sized re-extraction)
# is the one engine surface it doesn't exercise.
step "cargo run --example incremental_session"
cargo run --quiet --example incremental_session

# The unified-surface walkthrough asserts (at runtime) that GraphQuery
# answers and ReportV2 bytes are identical across batch and session
# backends.
step "cargo run --example query_api"
cargo run --quiet --example query_api

step "cargo doc --no-deps --workspace (docs must keep compiling)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Perf contracts: quick re-runs of engine_bench/query_bench must keep
# lenient overhead < 5%, incremental speedup >= 2x, and indexed query
# throughput within 30% of the committed BENCH_query.json. Needs the
# release profile, so `fast` skips it.
if [ "$mode" != "fast" ]; then
    step "scripts/check_bench.sh (bench-regression gate)"
    scripts/check_bench.sh
fi

step "all green"
