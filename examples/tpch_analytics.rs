//! Warehouse-scale motivation scenario: a TPC-H-flavoured analytics
//! pipeline. Answers the governance question from the paper's intro —
//! "how would a change in an upstream column affect the downstream?" —
//! for `lineitem.l_discount`.
//!
//! ```sh
//! cargo run --example tpch_analytics
//! ```

use lineagex::core::path_between;
use lineagex::datasets::tpch;
use lineagex::prelude::*;

fn main() -> Result<(), LineageError> {
    let (sql, ground_truth) = tpch::workload();
    let result = lineagex(&sql)?;

    let stats = result.graph.stats();
    println!("TPC-H-like pipeline:");
    println!("  relations            : {}", stats.relations);
    println!("  columns              : {}", stats.columns);
    println!("  contribute edges     : {}", stats.contribute_edges);
    println!("  reference edges      : {}", stats.reference_edges);
    println!("  both edges           : {}", stats.both_edges);
    println!("  max pipeline depth   : {}", stats.max_pipeline_depth);

    let failures = ground_truth.diff(&result.graph);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    println!("  ✔ lineage matches ground truth\n");

    // The impact question.
    let impact = result.impact_of("lineitem", "l_discount");
    println!(
        "impact of lineitem.l_discount: {} columns across {:?}",
        impact.impacted().len(),
        impact.impacted_tables()
    );

    // And the explanation: how does the discount reach the top-customer
    // report?
    let path = path_between(
        &result.graph,
        &SourceColumn::new("lineitem", "l_discount"),
        &SourceColumn::new("top_customers", "total_revenue"),
    )
    .expect("discount flows into total_revenue");
    println!("\nwhy does it reach top_customers.total_revenue?");
    println!("  lineitem.l_discount");
    for (col, kind) in path {
        println!("    -> {col} ({kind:?})");
    }

    Ok(())
}
