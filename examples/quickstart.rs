//! Quickstart: extract column lineage from a small query log and print
//! every artefact LineageX produces.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lineagex::prelude::*;

fn main() -> Result<(), LineageError> {
    // A mini warehouse log: DDL plus two views. Note the views arrive in
    // the "wrong" order — `spend_by_city` reads `enriched_orders` before
    // it is defined. LineageX's auto-inference stack handles that.
    let log = "
        CREATE TABLE customers (cid int, name text, city text);
        CREATE TABLE orders (oid int, cid int, amount numeric(10, 2), placed_at timestamp);

        CREATE VIEW spend_by_city AS
        SELECT city, sum_amount
        FROM enriched_orders
        WHERE sum_amount > 100;

        CREATE VIEW enriched_orders AS
        SELECT c.city AS city, sum(o.amount) AS sum_amount
        FROM customers c JOIN orders o ON c.cid = o.cid
        GROUP BY c.city;
    ";

    let result = lineagex(log)?;

    println!("== processing order (auto-inference stack) ==");
    println!("  {:?}", result.graph.order);
    println!("  deferrals: {:?}\n", result.deferrals);

    println!("== per-query lineage ==");
    for (id, q) in &result.graph.queries {
        println!("  {id}  (reads {:?})", q.tables);
        for out in &q.outputs {
            let sources: Vec<String> = out.ccon.iter().map(|s| s.to_string()).collect();
            println!("    {} <- C_con {{{}}}", out.name, sources.join(", "));
        }
        let refs: Vec<String> = q.cref.iter().map(|s| s.to_string()).collect();
        println!("    C_ref {{{}}}\n", refs.join(", "));
    }

    println!("== impact of changing customers.city ==");
    let impact = result.impact_of("customers", "city");
    for hit in impact.impacted() {
        println!("  {} ({:?}, {} hop(s))", hit.column, hit.kind, hit.distance);
    }

    // The three artefacts the paper's API returns.
    std::fs::write("target/quickstart_output.json", to_output_json(&result.graph)).unwrap();
    std::fs::write("target/quickstart_graph.dot", to_dot(&result.graph)).unwrap();
    std::fs::write("target/quickstart_graph.html", to_html(&result.graph)).unwrap();
    println!("\nwrote target/quickstart_output.json, .dot, and .html");

    Ok(())
}
