//! Reproduce the paper's comparisons on Example 1:
//!
//! * LineageX vs a SQLLineage-like tool (Fig. 2's red-box failures);
//! * LineageX vs an LLM-style analyst (§IV: finds contributing columns,
//!   misses referenced-only ones).
//!
//! ```sh
//! cargo run --example compare_baselines
//! ```

use lineagex::baseline::llm_sim::llm_style_impact;
use lineagex::baseline::metrics::{graph_contribute_edges, score_edges};
use lineagex::baseline::SqlLineageLike;
use lineagex::datasets::example1;
use lineagex::prelude::*;

fn main() -> Result<(), LineageError> {
    let log = example1::full_log();
    let truth = example1::ground_truth();

    // --- LineageX ---------------------------------------------------------
    let ours = lineagex(&log)?;
    let our_edges = graph_contribute_edges(&ours.graph);
    let our_score = score_edges(&our_edges, &truth.contribute_edges());

    // --- SQLLineage-like baseline ----------------------------------------
    let baseline = SqlLineageLike::new().extract(&log).expect("baseline parses");
    let base_edges = graph_contribute_edges(&baseline);
    let base_score = score_edges(&base_edges, &truth.contribute_edges());

    println!("contribute-edge accuracy on Example 1 (vs Fig. 2 ground truth):");
    println!(
        "  LineageX        precision {:>5.1}%  recall {:>5.1}%  F1 {:>5.1}%",
        100.0 * our_score.precision(),
        100.0 * our_score.recall(),
        100.0 * our_score.f1()
    );
    println!(
        "  SQLLineage-like precision {:>5.1}%  recall {:>5.1}%  F1 {:>5.1}%",
        100.0 * base_score.precision(),
        100.0 * base_score.recall(),
        100.0 * base_score.f1()
    );

    println!("\nFig. 2 failure modes observed in the baseline:");
    let webact = &baseline.queries["webact"];
    println!(
        "  webact output columns: {:?}  (4 extra from the INTERSECT branch)",
        webact.output_names()
    );
    let info = &baseline.queries["info"];
    let star = info.outputs.iter().find(|o| o.name == "*");
    println!(
        "  info contains a literal star entry: {:?}  (webact.* -> info.*)",
        star.map(|o| o.ccon.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );

    // --- LLM-style analyst -------------------------------------------------
    let llm_found = llm_style_impact(&ours.graph, &SourceColumn::new("web", "page"));
    let full = ours.impact_of("web", "page");
    let missed: Vec<String> = full
        .impacted()
        .iter()
        .filter(|c| !llm_found.contains(&c.column))
        .map(|c| c.column.to_string())
        .collect();
    println!("\nLLM-style impact of web.page:");
    println!("  found {} columns (contribution closure)", llm_found.len());
    println!("  missed {} referenced-only columns: {}", missed.len(), missed.join(", "));

    Ok(())
}
