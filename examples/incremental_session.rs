//! An incremental lineage session: ingest a pipeline statement by
//! statement, query it, redefine one view, and watch the engine
//! re-extract only that view's downstream cone.
//!
//! ```sh
//! cargo run --example incremental_session
//! ```

use lineagex::prelude::*;

fn main() -> Result<(), LineageError> {
    let mut engine = Engine::new();

    // 1. Statements arrive over time, like a service tailing a query log.
    println!("== ingest (statement at a time) ==");
    for statement in [
        "CREATE TABLE customers (cid int, name text, city text)",
        "CREATE TABLE orders (oid int, cid int, amount int)",
        "CREATE VIEW enriched AS
           SELECT c.city AS city, o.amount AS amount
           FROM customers c JOIN orders o ON c.cid = o.cid",
        "CREATE VIEW spend AS SELECT city, amount FROM enriched WHERE amount > 100",
        "CREATE VIEW audit AS SELECT name FROM customers",
    ] {
        for receipt in engine.ingest(statement)? {
            println!("  {receipt}");
        }
    }

    // 2. Lineage questions between ingests settle the graph lazily.
    println!("\n== query ==");
    let lineage = engine.lineage_of("spend", "amount")?.expect("spend.amount exists");
    let rendered: Vec<String> = lineage.iter().map(|s| s.to_string()).collect();
    println!("  spend.amount <- {}", rendered.join(", "));
    assert!(lineage.contains(&SourceColumn::new("enriched", "amount")));
    let cold_extractions = engine.stats().extractions;
    println!("  extractions so far: {cold_extractions} (the full pipeline, once)");

    // 3. Redefine one view. Only its downstream cone — enriched and
    //    spend, not audit — is re-extracted.
    println!("\n== redefine `enriched` ==");
    for receipt in engine.ingest(
        "CREATE VIEW enriched AS
           SELECT c.city AS city, o.amount + 0 AS amount
           FROM customers c JOIN orders o ON c.cid = o.cid",
    )? {
        println!("  {receipt}");
    }
    let cone: Vec<String> = engine.downstream_cone("enriched").into_iter().collect();
    println!("  downstream cone: {}", cone.join(", "));

    // 4. Re-query: the graph self-heals, and the counters prove the
    //    engine did cone-sized work, not log-sized work.
    let impact = engine.impact_of("orders", "amount")?;
    println!("\n== re-query ==");
    println!("  impact of orders.amount: {} column(s)", impact.impacted().len());
    assert!(impact.contains(&SourceColumn::new("spend", "amount")));
    let delta = engine.stats().extractions - cold_extractions;
    println!("  re-extracted {delta} of {} queries (cone only)", engine.graph()?.queries.len());
    assert_eq!(delta as usize, cone.len());
    assert_eq!(cone, vec!["enriched".to_string(), "spend".to_string()]);

    Ok(())
}
