//! The paper's demonstration scenario (§IV): an impact analysis of the
//! `web.page` column over Example 1, step by step.
//!
//! ```sh
//! cargo run --example impact_analysis
//! ```

use lineagex::core::explore;
use lineagex::datasets::example1;
use lineagex::prelude::*;

fn main() -> Result<(), LineageError> {
    // Step 1 — get started: feed the query log to LineageX.
    let result = lineagex(&example1::full_log())?;
    println!("Step 1: extracted lineage for {} queries", result.graph.queries.len());

    // Step 2 — locating the table: the owner wants to edit web.page.
    let web = &result.graph.nodes["web"];
    println!("\nStep 2: table `web` has columns {:?}", web.columns);

    // Step 3 — navigating column dependencies, one explore click at a time.
    let first_hop = explore(&result.graph, "web");
    println!("\nStep 3: explore(web) -> downstream {:?}", first_hop.downstream);
    for table in &first_hop.downstream {
        let next = explore(&result.graph, table);
        println!("        explore({table}) -> downstream {:?}", next.downstream);
    }

    // Step 4 — solving the case: the full impact set.
    let impact = result.impact_of("web", "page");
    println!("\nStep 4: impact of editing web.page ({} columns):", impact.impacted().len());
    for (table, cols) in impact.by_table() {
        let rendered: Vec<String> =
            cols.iter().map(|c| format!("{} ({:?})", c.column.column, c.kind)).collect();
        println!("  {table}: {}", rendered.join(", "));
    }

    // Cross-check against the paper's stated answer.
    let expected = example1::expected_page_impact();
    let all_found = expected.iter().all(|(t, c)| impact.contains(&SourceColumn::new(*t, *c)));
    assert!(all_found && impact.impacted().len() == expected.len());
    println!("\n✔ matches the paper's §IV step 4 answer exactly");

    Ok(())
}
