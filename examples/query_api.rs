//! The unified query surface: one `LineageView` front door over both the
//! batch pipeline and the incremental session engine, composable
//! `GraphQuery` questions, and the versioned `ReportV2` wire document.
//!
//! ```sh
//! cargo run --example query_api
//! ```

use lineagex::datasets::example1;
use lineagex::prelude::*;

/// Application code is written once against `LineageView` and runs over
/// either backend.
fn summarize(view: &mut impl LineageView) -> Result<(String, QueryAnswer), LineageError> {
    let stats = view.graph_stats()?;
    let answer = view.query().from("web.page").downstream().max_depth(3).run()?;
    let line = format!(
        "[{}] {} relations, {} columns; web.page reaches {} column(s) within 3 hops",
        view.backend_name(),
        stats.relations,
        stats.columns,
        answer.columns.len(),
    );
    Ok((line, answer))
}

fn main() -> Result<(), LineageError> {
    let log = example1::full_log();

    // Backend 1: the one-shot batch pipeline.
    let mut batch = lineagex(&log)?;
    let (batch_line, batch_answer) = summarize(&mut batch)?;
    println!("{batch_line}");

    // Backend 2: the incremental session engine, fed statement by
    // statement — same code, same answers.
    let mut session = Engine::new();
    for statement in log.split(';').filter(|s| !s.trim().is_empty()) {
        session.ingest(statement)?;
    }
    let (session_line, session_answer) = summarize(&mut session)?;
    println!("{session_line}");
    assert_eq!(batch_answer, session_answer);

    // Composable filters: only value-contributing edges, as a cone.
    let contribute_only = batch
        .query()
        .from("web.page")
        .downstream()
        .edge_kind(EdgeKind::Contribute)
        .edge_kind(EdgeKind::Both)
        .run()?;
    println!("\ncontribute-only cone of web.page ({} columns):", contribute_only.columns.len());
    for m in &contribute_only.columns {
        println!("  {} ({:?}, {} hop(s))", m.column, m.kind, m.distance);
    }

    // The answer carries a renderable subgraph slice — the cone, not the
    // whole graph.
    let dot = subgraph_to_dot(&contribute_only.subgraph);
    println!(
        "\nthe cone renders to {} lines of DOT (full graph: {} relations)",
        dot.lines().count(),
        batch.settled_graph()?.nodes.len(),
    );

    // The versioned wire document is byte-identical across backends.
    let batch_doc = batch.report_v2()?.to_json();
    let session_doc = session.report_v2()?.to_json();
    assert_eq!(batch_doc, session_doc);
    println!(
        "\nReportV2 (schema_version 2): {} bytes, byte-identical on both backends",
        batch_doc.len()
    );

    Ok(())
}
