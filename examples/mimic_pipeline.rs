//! Extract lineage for the MIMIC-like healthcare workload (26 base
//! tables / 324 columns, 70 views / 700+ columns — the statistics quoted
//! in the paper's §IV) and render the full interactive graph.
//!
//! ```sh
//! cargo run --example mimic_pipeline
//! ```

use lineagex::datasets::mimic;
use lineagex::prelude::*;
use std::time::Instant;

fn main() -> Result<(), LineageError> {
    let workload = mimic::workload();
    let sql = workload.full_sql();

    let start = Instant::now();
    let result = lineagex(&sql)?;
    let elapsed = start.elapsed();

    let graph = &result.graph;
    let base_tables =
        graph.nodes.values().filter(|n| matches!(n.kind, lineagex::core::NodeKind::BaseTable));
    let views = graph.nodes.values().filter(|n| matches!(n.kind, lineagex::core::NodeKind::View));

    println!("MIMIC-like workload extracted in {elapsed:?}");
    println!("  base tables : {}", base_tables.count());
    println!("  views       : {}", views.count());
    println!("  columns     : {}", graph.column_count());
    println!("  edges       : {}", graph.all_edges().len());

    // Verify against the workload's generated ground truth.
    let failures = workload.ground_truth.diff(graph);
    assert!(failures.is_empty(), "lineage mismatches:\n{}", failures.join("\n"));
    println!("  ✔ lineage matches generated ground truth exactly");

    // A realistic governance question: which views are touched if
    // labevents.valuenum changes (e.g. a unit migration)?
    let impact = result.impact_of("labevents", "valuenum");
    println!(
        "\nimpact of labevents.valuenum: {} columns in {} views",
        impact.impacted().len(),
        impact.impacted_tables().len()
    );
    for table in impact.impacted_tables().iter().take(10) {
        println!("  {table}");
    }

    std::fs::write("target/mimic_graph.html", to_html(graph)).unwrap();
    std::fs::write("target/mimic_output.json", to_output_json(graph)).unwrap();
    println!("\nwrote target/mimic_graph.html and target/mimic_output.json");

    Ok(())
}
