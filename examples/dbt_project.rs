//! dbt-style extraction (the paper's footnote 1): each model lives in its
//! own file holding a bare `SELECT`; the file name is the model's — and
//! therefore the lineage node's — identifier.
//!
//! ```sh
//! cargo run --example dbt_project
//! ```

use lineagex::prelude::*;

fn main() -> Result<(), LineageError> {
    // models/*.sql of a small dbt project, as (file name, content) pairs.
    let models = [
        (
            "stg_customers",
            "SELECT c.cid AS customer_id, c.name AS customer_name, c.city
             FROM raw_customers c",
        ),
        (
            "stg_orders",
            "SELECT o.oid AS order_id, o.cid AS customer_id, o.amount
             FROM raw_orders o WHERE o.amount IS NOT NULL",
        ),
        (
            "fct_customer_orders",
            "SELECT sc.customer_id, sc.customer_name, count(*) AS order_count
             FROM stg_customers sc JOIN stg_orders so
               ON sc.customer_id = so.customer_id
             GROUP BY sc.customer_id, sc.customer_name",
        ),
    ];

    // Source schemas come from the warehouse DDL.
    let result = LineageX::new()
        .with_ddl(
            "CREATE TABLE raw_customers (cid int, name text, city text);
             CREATE TABLE raw_orders (oid int, cid int, amount numeric);",
        )?
        .run_named(models)?;

    println!("model dependency order: {:?}\n", result.graph.order);
    for id in &result.graph.order {
        let q = &result.graph.queries[id];
        println!("{id}");
        println!("  reads: {:?}", q.tables);
        for out in &q.outputs {
            let srcs: Vec<String> = out.ccon.iter().map(|s| s.to_string()).collect();
            println!("  {} <- [{}]", out.name, srcs.join(", "));
        }
        println!();
    }

    // The whole point of dbt lineage: trace a raw column to the mart.
    let impact = result.impact_of("raw_customers", "name");
    println!("raw_customers.name flows into:");
    for hit in impact.impacted() {
        println!("  {} ({} hop(s))", hit.column, hit.distance);
    }
    assert!(impact.contains(&SourceColumn::new("fct_customer_orders", "customer_name")));

    Ok(())
}
