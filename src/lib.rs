//! # LineageX (Rust)
//!
//! A from-scratch Rust reproduction of **"LineageX: A Column Lineage
//! Extraction System for SQL"** (ICDE 2025): static column-level lineage
//! extraction from SQL query logs, with table/view auto-inference,
//! `SELECT *` and ambiguity handling, an optional simulated-database
//! `EXPLAIN` path, impact analysis, and JSON/DOT/HTML visualisation.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`sqlparse`] | `lineagex-sqlparse` | SQL lexer, parser, AST |
//! | [`catalog`] | `lineagex-catalog` | schemas, binder, simulated database |
//! | [`core`] | `lineagex-core` | the lineage extraction engine |
//! | [`engine`] | `lineagex-engine` | incremental session engine, parallel scheduler |
//! | [`serve`] | `lineagex-serve` | concurrent JSON-lines lineage service over TCP |
//! | [`obs`] | `lineagex-obs` | lock-free metrics registry: counters, histograms, span timers |
//! | [`baseline`] | `lineagex-baseline` | SQLLineage-like & LLM-style baselines |
//! | [`viz`] | `lineagex-viz` | JSON / DOT / interactive HTML output |
//! | [`datasets`] | `lineagex-datasets` | Example 1, MIMIC-like, generators |
//!
//! ## Quick start
//!
//! ```
//! use lineagex::prelude::*;
//!
//! let result = lineagex(
//!     "CREATE TABLE web (cid int, date date, page text, reg boolean);
//!      CREATE VIEW webinfo AS
//!        SELECT cid AS wcid, page AS wpage FROM web
//!        WHERE EXTRACT(YEAR FROM date) = 2022;",
//! ).unwrap();
//!
//! // Who is affected if web.page changes?
//! let impact = result.impact_of("web", "page");
//! assert!(impact.contains(&SourceColumn::new("webinfo", "wpage")));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

#[cfg(feature = "baseline")]
pub use lineagex_baseline as baseline;
pub use lineagex_catalog as catalog;
pub use lineagex_core as core;
#[cfg(feature = "datasets")]
pub use lineagex_datasets as datasets;
pub use lineagex_engine as engine;
pub use lineagex_obs as obs;
pub use lineagex_serve as serve;
pub use lineagex_sqlparse as sqlparse;
#[cfg(feature = "viz")]
pub use lineagex_viz as viz;

/// The most commonly used items in one import.
///
/// The query surface convention: application code talks to a backend —
/// batch [`LineageResult`](lineagex_core::LineageResult) or session
/// [`Engine`](lineagex_engine::Engine) — through the
/// [`LineageView`](lineagex_core::LineageView) trait, composes questions
/// with [`GraphQuery`](lineagex_core::GraphQuery), and serialises through
/// the versioned [`ReportV2`](lineagex_core::ReportV2) document. The
/// legacy free functions (`impact_of`, `upstream_of`, `path_between`,
/// `explore`) are thin shortcuts over the same engine.
pub mod prelude {
    pub use lineagex_catalog::{Catalog, SimulatedDatabase};
    pub use lineagex_core::{
        explore, impact_of, lineagex, lineagex_lenient, path_between, upstream_of, AmbiguityPolicy,
        ColumnMatch, Diagnostic, DiagnosticCode, DialectKind, Direction, EdgeKind, GraphIndex,
        GraphIndexCache, GraphQuery, GraphStats, Interner, LineageError, LineageGraph,
        LineageResult, LineageView, LineageX, QueryAnswer, QueryLineage, QueryReport, QuerySpec,
        RelationMatch, ReportV2, Severity, SourceColumn, Subgraph, Symbol, SCHEMA_VERSION,
    };
    pub use lineagex_engine::{
        Engine, EngineOptions, EngineSnapshot, EngineStats, IngestAction, StmtId,
    };
    pub use lineagex_obs::{
        registry, Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot, Registry, SpanTimer,
    };
    pub use lineagex_serve::{ServeClient, ServeOptions, Server};
    #[cfg(feature = "viz")]
    pub use lineagex_viz::{
        subgraph_to_dot, subgraph_to_mermaid, to_dot, to_html, to_mermaid, to_output_json,
        to_report_v2_json,
    };
}
